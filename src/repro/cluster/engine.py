"""The sharded scatter-gather serving layer.

A :class:`ClusterEngine` partitions each column's codes into contiguous
RID-range shards and runs one :class:`~repro.engine.engine.QueryEngine`
per shard.  Because the advisor measures each shard's slice
independently, shards of the same column may land on *different*
backends when local entropy/cardinality differ — the per-partition
re-fitting that hierarchical/partitioned range indexes exploit.

Serving is scatter-gather: per-shard range queries execute through a
pluggable executor (:mod:`.executor`), each consulting the shared
result cache (:mod:`.cache`) before touching its shard's engine;
shard-local positions are offset-translated to global RIDs and merged
(shard order *is* global order, so the k-way merge of sorted disjoint
runs degenerates to concatenation).  Conjunctive ``select`` intersects
the per-dimension merged streams, exactly like the single-engine plan
of §1.

Updates route to one shard — appends to the last, changes/deletes by
live prefix sums — and bump only that shard's column version, so the
versioned shared-cache keys of every *other* shard stay valid.  Each
shard also counts its update traffic: past ``drift_window`` updates
the column's :class:`~repro.engine.advisor.WorkloadStats` are
re-measured (:meth:`~repro.engine.engine.EngineColumn.restat`) and, if
the advisor's verdict changed, the shard's index is rebuilt in place
behind the engine (online backend migration; also callable explicitly
via :meth:`ClusterEngine.migrate`).

Shards have a *lifecycle*: when ``target_shard_rows`` is set, a shard
that outgrows it is split in place (:meth:`ClusterEngine.split_shard`)
— both halves rebuilt through the per-shard advisor on fresh local
dictionaries — and a shard starved below the merge floor by deletions
is fused into its smaller neighbor (:meth:`ClusterEngine.merge_shards`)
when the union stays under the split threshold.  Shards carry *stable
uids* (not positions) in shared-cache keys, so a lifecycle operation
retires exactly the participating shards' entries while every sibling
shard's hot entries keep serving.  :meth:`ClusterEngine.rebalance`
applies the same policy until the whole cluster is within bounds.

Cross-shard ``select`` streams: per-dimension RID iterators walk the
shards in order (shard order *is* global order), materializing one
shard's answer at a time, and the k-way conjunctive merge emits global
RIDs one by one — peak intermediate memory is O(max shard answer)
rather than O(answer), accounted by :class:`GatherStats`.  Under an
executor that buys overlap (threads, worker processes) the walk
becomes a bounded *prefetching bridge*: while one shard's answer
drains, up to ``prefetch_depth`` later shards' fetches are already in
flight, so per-shard latency overlaps the drain without widening the
memory bound beyond ``(1 + prefetch_depth)`` shard answers per
dimension.

Execution is a deployment choice (see :mod:`.executor`): *local*
executors run scatter tasks against this process's shard engines,
while the *resident* :class:`~repro.cluster.executor.ProcessExecutor`
hosts a bit-identical replica of every shard engine in worker
processes — built once from a shipped snapshot, then kept in sync by
the same routed update/lifecycle deltas this class applies locally —
and answers queries with ``(positions, io)`` pairs whose
:class:`~repro.iomodel.stats.Snapshot` deltas fold into
``scatter_io``, the cluster-total I/O of the query path, identical
across executors on the same workload.

Concurrency contract: scatter tasks may run in parallel (they touch
disjoint shard engines and the lock-protected shared cache), but the
cluster is single-writer — updates and lifecycle operations must not
interleave with queries.  Top-level operations (queries, aggregates,
updates, lifecycle, ``stats``) enforce that contract themselves with a
reentrant per-cluster lock, so several threads — e.g. the asyncio
front-end's worker bridge (:mod:`repro.serve`) — may call one cluster
concurrently and are serialized per engine; cross-engine parallelism
comes from running several clusters.  The lock is reentrant because
operations nest (``topk`` runs ``count_by``; auto-split runs inside
an append).  Streaming iterators (``query_iter``/``select_iter``)
are the exception: they pull outside the lock, so an open stream must
still not interleave with writers — the materialized forms take the
lock for their whole run and are what the front-end serves.
"""

from __future__ import annotations

import bisect
import itertools
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..core.interface import RangeResult
from ..engine.advisor import Advisor, CostModel
from ..engine.engine import (
    EngineColumn,
    QueryEngine,
    QueryPlan,
)
from ..engine.registry import DYNAMISM_LEVELS, IndexSpec, get_spec
from ..errors import InvalidParameterError, QueryError, UpdateError
from ..iomodel.stats import IOStats, Snapshot
from ..obs import CacheTierStats
from ..obs.tracer import Span
from ..query import (
    TRUE,
    LeafPlan,
    Plan,
    PlanReport,
    Pred,
    ShardLeafPlan,
    compile_pred,
    evaluate,
    evaluate_iter,
    mapping_to_pred,
    resolve_universe,
    specialize,
    warn_mapping_adapter,
)
from ..query.planner import ALL, EMPTY
from .cache import InMemorySharedCache, SharedResultCache, shared_key
from .executor import CompletedFuture, MappedFuture, SerialExecutor
from .worker import evaluate_shard_fold
from .sharding import (
    ShardPlan,
    locate,
    offsets_of,
    plan_from_lengths,
    plan_shards,
)

#: Shard uids are unique per *process*, not per cluster, so several
#: clusters can share one resident executor without their worker-side
#: runtimes colliding.
_UID_SOURCE = itertools.count()

#: Sentinel for "no entry" when re-keying sparse per-shard mappings.
_ABSENT = object()

#: Sentinel returned by a deferred :meth:`ClusterEngine._submit_fetch`:
#: the fetch was collected for a grouped per-worker shipment and its
#: real future arrives when the group is submitted.
_DEFERRED = object()


def _remap_shard_dict(
    d: dict[int, object], at: int, width: int, replacement: list
) -> dict[int, object]:
    """Re-key a per-shard mapping after a lifecycle splice.

    ``width`` shards starting at position ``at`` were replaced by
    ``len(replacement)`` new ones; entries left of the splice keep
    their keys, entries right of it shift, and the new shards receive
    the ``replacement`` values (``_ABSENT`` meaning "no entry" — used
    for sparse mappings like per-shard pins).
    """
    shift = len(replacement) - width
    out: dict[int, object] = {}
    for key, value in d.items():
        if key < at:
            out[key] = value
        elif key >= at + width:
            out[key + shift] = value
    for i, value in enumerate(replacement):
        if value is not _ABSENT:
            out[at + i] = value
    return out


@dataclass
class ColumnMeta:
    """Cluster-level bookkeeping for one sharded column."""

    name: str
    sigma: int
    dynamism: str
    expected_selectivity: float
    require_exact: bool
    require_delete: bool
    backend: str | None  # explicit column-wide pin; disables auto-migration
    #: Per-shard pins from ``migrate(shard_id=..., backend=...)``;
    #: a pinned shard is exempt from drift auto-migration and keeps
    #: its backend until the pin is replaced or cleared.
    shard_pins: dict[int, str] = field(default_factory=dict)
    #: Incarnation stamp (random token): cache keys carry it so a
    #: re-added column never matches its predecessor's entries — nor
    #: another engine's same-named column when several engines (or
    #: processes) share one external result cache.
    epoch: str = ""
    updates_since_stat: dict[int, int] = field(default_factory=dict)
    #: Per-shard local alphabets (static columns only): the sorted
    #: distinct global codes a shard holds.  ``None`` means the shard
    #: stores global codes verbatim (all dynamic shards do — an update
    #: may route any character anywhere).
    domains: dict[int, list[int] | None] = field(default_factory=dict)


@dataclass(frozen=True)
class Migration:
    """One shard's backend change, as reported by ``migrate()``."""

    column: str
    shard_id: int
    old_backend: str
    new_backend: str

    @property
    def changed(self) -> bool:
        return self.old_backend != self.new_backend


@dataclass(frozen=True)
class ShardSplit:
    """One shard split, as recorded by :meth:`ClusterEngine.split_shard`.

    ``shard_id`` is the shard's *position* at the moment of the split
    (positions shift as the shard set evolves); ``rows`` is the live
    row count (max across columns) that triggered it.
    """

    shard_id: int
    rows: int
    left_rows: int
    right_rows: int


@dataclass(frozen=True)
class ShardMerge:
    """One shard merge, as recorded by :meth:`ClusterEngine.merge_shards`."""

    left_id: int
    left_rows: int
    right_rows: int


@dataclass
class GatherStats:
    """Materialization accounting for the streaming gather.

    ``live_rids`` counts the RIDs currently buffered by active
    streaming gathers (one shard's answer per dimension at a time);
    ``peak_rids`` is the high-water mark since the last
    :meth:`reset` — the number the O(block) memory claim is asserted
    against.  A fully materialized gather would peak at the whole
    per-dimension answer instead.
    """

    live_rids: int = 0
    peak_rids: int = 0

    def acquire(self, count: int) -> None:
        self.live_rids += count
        if self.live_rids > self.peak_rids:
            self.peak_rids = self.live_rids

    def release(self, count: int) -> None:
        self.live_rids -= count

    def reset(self) -> None:
        self.live_rids = 0
        self.peak_rids = 0

    def to_json(self) -> dict:
        """A JSON-serializable dict; inverse of :meth:`from_json`."""
        return {"live_rids": self.live_rids, "peak_rids": self.peak_rids}

    @classmethod
    def from_json(cls, data: dict) -> "GatherStats":
        return cls(
            live_rids=data.get("live_rids", 0),
            peak_rids=data.get("peak_rids", 0),
        )


@dataclass(frozen=True)
class ShardStats:
    """One shard's row in a :class:`ClusterStats` snapshot.

    ``uid`` is the shard's stable identity (the shared-cache key
    slot); ``rows`` its live row count (max across columns, the same
    number the sizing policy goes by); ``heat`` its update traffic
    since the last restat; ``backends`` the serving backend per
    column, as ``(column, backend)`` pairs.
    """

    shard_id: int
    uid: int
    rows: int
    heat: int
    backends: tuple[tuple[str, str], ...]

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "uid": self.uid,
            "rows": self.rows,
            "heat": self.heat,
            "backends": dict(self.backends),
        }


@dataclass(frozen=True)
class ClusterStats:
    """One typed snapshot of the whole cluster, JSON-serializable.

    Returned by :meth:`ClusterEngine.stats`; embeds the existing
    accounting objects by value — the query path's ``scatter_io``
    :class:`~repro.iomodel.stats.Snapshot`, the streaming gather's
    :class:`GatherStats`, the resident executor's ``op_counts`` (an
    empty dict under local executors) — plus per-shard rows, heat and
    backend verdicts, the shared result cache's tier counters, the
    lifecycle history lengths, and, when attached, the
    :class:`~repro.obs.MetricsRegistry` dump and slow-query-log depth.
    ``to_dict()`` round-trips through ``json.dumps``.
    """

    num_shards: int
    columns: tuple[str, ...]
    scatter_io: Snapshot
    gather_rids: int
    gather: GatherStats
    shards: tuple[ShardStats, ...]
    op_counts: dict
    shared_cache: "CacheTierStats | None"
    migrations: int
    splits: int
    merges: int
    metrics: dict | None = None
    slow_queries: int = 0
    worker_deaths: int = 0
    replicas: dict | None = None

    def to_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "columns": list(self.columns),
            "scatter_io": self.scatter_io.to_json(),
            "gather_rids": self.gather_rids,
            "gather": self.gather.to_json(),
            "shards": [shard.to_dict() for shard in self.shards],
            "op_counts": dict(self.op_counts),
            "shared_cache": (
                self.shared_cache.to_dict()
                if self.shared_cache is not None
                else None
            ),
            "migrations": self.migrations,
            "splits": self.splits,
            "merges": self.merges,
            "metrics": self.metrics,
            "slow_queries": self.slow_queries,
            "worker_deaths": self.worker_deaths,
            "replicas": self.replicas,
        }


class ClusterEngine:
    """Shards columns by RID range and serves them scatter-gather."""

    def __init__(
        self,
        num_shards: int | None = None,
        target_shard_rows: int | None = None,
        executor=None,
        shared_cache: SharedResultCache | None = None,
        advisor: Advisor | None = None,
        cost_model: CostModel | None = None,
        cache_size: int = 128,
        drift_window: int | None = 256,
        auto_split: bool | None = None,
        min_shard_rows: int | None = None,
        prefetch_depth: int | None = None,
        heat_tolerance: float = 0.25,
        io_latency_s: float = 0.0,
        tracer=None,
        metrics=None,
        slow_log=None,
    ) -> None:
        if advisor is not None and cost_model is not None:
            raise InvalidParameterError(
                "pass either an advisor or a cost_model, not both"
            )
        if prefetch_depth is not None and prefetch_depth < 0:
            raise InvalidParameterError("prefetch_depth must be >= 0 or None")
        if not 0.0 <= heat_tolerance < 1.0:
            raise InvalidParameterError("heat_tolerance must be in [0, 1)")
        if io_latency_s < 0:
            raise InvalidParameterError("io_latency_s must be >= 0")
        if drift_window is not None and drift_window <= 0:
            raise InvalidParameterError("drift_window must be >= 1 or None")
        if min_shard_rows is not None and min_shard_rows <= 0:
            raise InvalidParameterError("min_shard_rows must be >= 1 or None")
        if (
            min_shard_rows is not None
            and target_shard_rows is not None
            and min_shard_rows > target_shard_rows
        ):
            raise InvalidParameterError(
                "min_shard_rows cannot exceed target_shard_rows"
            )
        # Lifecycle policy: sizing against target_shard_rows turns
        # auto-split/auto-merge on unless explicitly disabled; a fixed
        # num_shards cluster stays static unless rebalance()d by hand.
        if auto_split is None:
            auto_split = target_shard_rows is not None
        elif auto_split and target_shard_rows is None:
            raise InvalidParameterError(
                "auto_split needs target_shard_rows to size shards against"
            )
        if min_shard_rows is None and target_shard_rows is not None:
            min_shard_rows = max(1, target_shard_rows // 4)
        self._num_shards = num_shards
        self._target_shard_rows = target_shard_rows
        self._auto_split = auto_split
        self._min_shard_rows = min_shard_rows
        self.executor = executor if executor is not None else SerialExecutor()
        if prefetch_depth is None:
            # Only executors that buy overlap justify fetching ahead;
            # an inline executor would just widen the memory bound.
            prefetch_depth = (
                1 if getattr(self.executor, "supports_prefetch", False) else 0
            )
        self.prefetch_depth = prefetch_depth
        self.heat_tolerance = heat_tolerance
        self.io_latency_s = io_latency_s
        self.shared_cache = (
            shared_cache if shared_cache is not None else InMemorySharedCache()
        )
        self.advisor = advisor if advisor is not None else Advisor(cost_model)
        self.cache_size = cache_size
        self.drift_window = drift_window
        self.plan_: ShardPlan | None = None
        self.shards: list[QueryEngine] = []
        #: Stable per-shard identities for shared-cache keys: positions
        #: shift when shards split or merge, uids never do — so a
        #: lifecycle operation retires exactly its own shards' entries
        #: while every sibling's stay reachable (and a fresh shard can
        #: never alias a retired one's keys).
        self.shard_uids: list[int] = []
        self.columns: dict[str, ColumnMeta] = {}
        self.migrations: list[Migration] = []
        self.splits: list[ShardSplit] = []
        self.merges: list[ShardMerge] = []
        self.gather_stats = GatherStats()
        #: Cluster-total I/O of the query path: the merged per-task
        #: snapshots every scatter fetch returns, wherever it ran.  A
        #: fixed workload must produce identical totals under every
        #: executor — the conformance suite asserts it.
        self.scatter_io = IOStats()
        #: Positions delivered to the coordinator by scatter replies
        #: (gather-side RID/position traffic).  Every path that
        #: consumes per-shard position lists counts them here; the
        #: aggregate pushdown path never increments it — the proof
        #: that counts, not RID lists, crossed the pipes.
        self.gather_rids = 0
        #: Observability hooks (:mod:`repro.obs`): all three default
        #: to ``None`` and cost one attribute check on the query path
        #: when absent.  The tracer stitches coordinator and worker
        #: spans into per-query traces; the metrics registry receives
        #: counters/histograms from the cluster, its shared cache, its
        #: executor, and locally built shard disks; the slow-query log
        #: captures traces and plan reports past its threshold.
        self.tracer = tracer
        self.metrics = metrics
        self.slow_log = slow_log
        self._active_trace = None
        self._op_depth = 0
        #: The module-docstring concurrency contract, enforced: every
        #: top-level operation holds this while it runs, serializing
        #: concurrent callers (the serve bridge's worker threads)
        #: per engine.  Reentrant — operations nest.
        self._serve_lock = threading.RLock()
        #: Monotone count of answer-changing operations (updates,
        #: column/lifecycle changes).  Single-flight coalescing keys
        #: include it so a request admitted *after* a mutation
        #: completed can never be served a scatter dispatched before
        #: it — the coalescing window closes at every write.
        self.mutations = 0
        #: Optional hot-shard read replicas
        #: (:class:`repro.serve.ReplicaSet`), attached via
        #: :meth:`attach_replicas`.  ``None`` costs one attribute
        #: check on the fetch path.
        self.replicas = None
        #: Optional write-ahead log (:class:`repro.persist.DeltaLog`),
        #: attached via :meth:`attach_wal`.  Every acknowledged
        #: answer-changing operation is journaled before the lock
        #: releases; derived work (drift auto-migrations, auto-splits)
        #: is suppressed because replay re-derives it.
        self.wal = None
        #: Called with each journaled record's seq (the background
        #: :class:`repro.persist.Checkpointer` installs itself here).
        self.wal_listener = None
        self._wal_suspended = False
        #: Shard uid -> snapshot path recorded at restore time, while
        #: the snapshot still equals the live shard.  The replica set
        #: rehydrates from these instead of rebuilding; any delta or
        #: retirement invalidates the entry (see :meth:`_ship_delta`).
        self._snap_sources: dict[int, str] = {}
        if metrics is not None:
            if getattr(self.shared_cache, "metrics", False) is None:
                self.shared_cache.metrics = metrics
            if getattr(self.executor, "metrics", False) is None:
                self.executor.metrics = metrics

    def _new_uid(self) -> int:
        return next(_UID_SOURCE)

    # ------------------------------------------------------------------
    # Resident-executor synchronization (delta shipping)
    # ------------------------------------------------------------------

    @property
    def _resident(self) -> bool:
        return getattr(self.executor, "kind", "local") == "resident"

    def _column_payload(self, column: EngineColumn) -> tuple:
        """One column's picklable build snapshot for a worker replica.

        The backend is pinned to the spec the local advisor already
        chose, so the replica is bit-identical by construction — the
        worker never re-runs (and so can never disagree with) the
        advisor.  The trailing epoch is the column's incarnation stamp
        (see :class:`ColumnMeta`): workers key any durable cache-store
        entries by it, so a re-added column never reads a
        predecessor's persisted results.
        """
        stats = column.stats
        meta = self.columns.get(column.name)
        return (
            column.name,
            list(column.codes),
            stats.sigma,
            stats.dynamism,
            stats.expected_selectivity,
            stats.require_exact,
            stats.require_delete,
            column.spec.name,
            meta.epoch if meta is not None else "",
        )

    def _shard_payload(self, shard_id: int) -> tuple:
        engine = self.shards[shard_id]
        return (
            self.cache_size,
            self.io_latency_s,
            [self._column_payload(col) for col in engine.columns.values()],
        )

    def _ship_build(self, shard_id: int) -> None:
        if self._resident:
            self.executor.build_shard(
                self.shard_uids[shard_id], self._shard_payload(shard_id)
            )

    def _ship_retire(self, uid: int) -> None:
        self._snap_sources.pop(uid, None)
        if self.replicas is not None:
            self.replicas.retire(uid)
        if self._resident:
            self.executor.retire_shard(uid)

    def _ship_delta(self, shard_id: int, delta: tuple) -> None:
        # The first delta makes any restore-time snapshot stale for
        # this shard: replicas must build from the live payload again.
        self._snap_sources.pop(self.shard_uids[shard_id], None)
        if self.replicas is not None:
            self.replicas.on_delta(self.shard_uids[shard_id], delta)
        if self._resident:
            self.executor.apply_delta(self.shard_uids[shard_id], delta)

    # ------------------------------------------------------------------
    # Write-ahead logging (repro.persist)
    # ------------------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Journal every acknowledged mutation into ``wal``.

        The caller owns the log's placement (usually
        :func:`repro.persist.init_persistence` or a restore).  Records
        are appended inside the serve lock, after the operation
        succeeded and before it is acknowledged, so the log never
        holds an operation that was refused, and never misses one that
        was acknowledged.
        """
        with self._serve_lock:
            if self.wal is not None:
                raise InvalidParameterError(
                    "a WAL is already attached; detach it first"
                )
            self.wal = wal

    def detach_wal(self):
        """Stop journaling; returns the log (not closed) or ``None``."""
        with self._serve_lock:
            wal, self.wal = self.wal, None
            return wal

    def _log(self, record: tuple) -> None:
        if self.wal is None or self._wal_suspended:
            return
        seq = self.wal.append(record)
        if self.metrics is not None:
            self.metrics.counter("persist.wal.records").inc()
        listener = self.wal_listener
        if listener is not None:
            listener(seq)

    @contextmanager
    def _suppress_wal(self):
        """Mask derived work out of the journal.

        Drift auto-migrations and lifecycle auto-splits/merges are
        deterministic consequences of the logical record that
        triggered them: WAL replay re-runs that record through the
        public API and re-derives them.  Logging both the trigger and
        the derivation would double-apply on replay.
        """
        previous = self._wal_suspended
        self._wal_suspended = True
        try:
            yield
        finally:
            self._wal_suspended = previous

    # ------------------------------------------------------------------
    # Hot-shard read replicas
    # ------------------------------------------------------------------

    def attach_replicas(self, replica_set) -> None:
        """Attach a :class:`repro.serve.ReplicaSet` to this cluster.

        The set rides the same routed-delta stream the resident
        executor does (:meth:`_ship_delta` / :meth:`_ship_retire`), so
        replicas stay in sync however updates arrive; scatter fetches
        consult it after a shared-cache miss and fall back to the
        primary whenever the replica is absent or stale.
        """
        with self._serve_lock:
            if self.replicas is not None:
                raise InvalidParameterError(
                    "a ReplicaSet is already attached; detach it first"
                )
            self.replicas = replica_set
            replica_set.bind(self)

    def detach_replicas(self) -> None:
        """Drop the attached replica set (a no-op when none is)."""
        with self._serve_lock:
            replicas, self.replicas = self.replicas, None
            if replicas is not None:
                replicas.unbind()

    def _replica_fetch(self, name: str, shard_id: int, lo: int, hi: int):
        """One shard range from a fresh replica, or ``None``.

        Returns ``(positions, io_snapshot)`` exactly like a primary
        fetch; freshness is fenced by the shard-local column version,
        so a replica that missed a delta can only ever *miss*, never
        answer stale.
        """
        replicas = self.replicas
        if replicas is None:
            return None
        uid = self.shard_uids[shard_id]
        version = self.shards[shard_id].column(name).version
        return replicas.fetch(uid, name, lo, hi, version)

    # ------------------------------------------------------------------
    # Column management
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def add_column(
        self,
        name: str,
        codes: Sequence[int],
        sigma: int | None = None,
        dynamism: str = "static",
        expected_selectivity: float = 0.1,
        require_exact: bool = True,
        require_delete: bool = False,
        backend: str | None = None,
    ) -> ColumnMeta:
        """Shard a column and build one index per shard.

        The first column fixes the shard plan (``num_shards`` /
        ``target_shard_rows`` from the constructor); later columns must
        arrive at the same build-time length, since shards partition
        one shared RID space.  ``sigma`` is the *global* alphabet; a
        static shard re-applies §1.1's dictionary trick locally — its
        slice is re-encoded onto the dense alphabet of the codes it
        actually holds, and global query ranges are translated (with
        floor/ceiling semantics) at scatter time — so a shard holding
        four distinct values gets four-bitmap directories and
        low-cardinality stats no matter how sparse its codes are
        globally.  Dynamic shards keep the global alphabet, because an
        update can route any character anywhere.  Either way each
        shard's stats are measured from its own slice, which is how
        different shards of one column end up on different backends.
        """
        with self._serve_lock:
            meta = self._add_column_impl(
                name, codes, sigma, dynamism, expected_selectivity,
                require_exact, require_delete, backend,
            )
            self.mutations += 1
            self._log((
                "add_column", name, list(codes), meta.sigma, dynamism,
                expected_selectivity, require_exact, require_delete,
                backend,
            ))
            return meta

    def _add_column_impl(
        self,
        name: str,
        codes: Sequence[int],
        sigma: int | None,
        dynamism: str,
        expected_selectivity: float,
        require_exact: bool,
        require_delete: bool,
        backend: str | None,
    ) -> ColumnMeta:
        if name in self.columns:
            raise InvalidParameterError(f"column {name!r} already exists")
        if not len(codes):
            raise InvalidParameterError(f"column {name!r} is empty")
        # Validate the global alphabet up front: static shards are
        # re-dictionaried onto local alphabets, which would otherwise
        # silently swallow an out-of-range code forever.
        lo_code, hi_code = min(codes), max(codes)
        if sigma is None:
            sigma = hi_code + 1
        if lo_code < 0 or hi_code >= sigma:
            raise InvalidParameterError(
                f"column {name!r} holds codes outside the declared "
                f"alphabet [0, {sigma})"
            )
        created_plan = self.plan_ is None
        if created_plan:
            self.plan_ = plan_shards(
                len(codes), self._num_shards, self._target_shard_rows
            )
            self.shards = [
                QueryEngine(advisor=self.advisor, cache_size=self.cache_size)
                for _ in range(self.plan_.num_shards)
            ]
            self.shard_uids = [
                self._new_uid() for _ in range(self.plan_.num_shards)
            ]
        elif len(codes) != self.plan_.n:
            raise InvalidParameterError(
                f"column {name!r} has {len(codes)} rows; this cluster was "
                f"sharded for {self.plan_.n}"
            )
        meta = ColumnMeta(
            name=name,
            sigma=sigma,
            dynamism=dynamism,
            expected_selectivity=expected_selectivity,
            require_exact=require_exact,
            require_delete=require_delete,
            backend=backend,
            epoch=uuid.uuid4().hex,
            updates_since_stat={s: 0 for s in range(self.num_shards)},
        )
        # Register the metadata before building: the worker shipments
        # below read the column's epoch through it.  The unwind path
        # removes it again, so a failed add_column still leaves the
        # name unclaimed.
        self.columns[name] = meta
        built: list[int] = []
        shipped: list[int] = []
        try:
            for shard_id, (start, stop) in enumerate(self.plan_.slices()):
                # One canonical builder (shared with split/merge):
                # static slices re-dictionary onto their local
                # alphabet, dynamic slices keep the global one.
                meta.domains[shard_id] = self._build_shard_column(
                    self.shards[shard_id],
                    meta,
                    list(codes[start:stop]),
                    backend,
                )
                built.append(shard_id)
            if self._resident:
                for shard_id in range(self.num_shards):
                    if created_plan:
                        # The first column creates the shard set:
                        # ship each shard's full build snapshot.
                        self._ship_build(shard_id)
                    else:
                        self._ship_delta(
                            shard_id,
                            (
                                "add_column",
                                self._column_payload(
                                    self.shards[shard_id].column(name)
                                ),
                            ),
                        )
                    shipped.append(shard_id)
        except BaseException:
            # Unwind the shards that already built, so a failed
            # add_column neither bricks the name nor (for the very
            # first column) pins the cluster to the failed length.
            for shard_id in shipped:
                try:
                    if created_plan:
                        self._ship_retire(self.shard_uids[shard_id])
                    else:
                        self._ship_delta(shard_id, ("drop_column", name))
                except Exception:  # best-effort worker cleanup
                    pass
            for shard_id in built:
                self.shards[shard_id].drop_column(name)
            self.columns.pop(name, None)
            if created_plan:
                self.plan_ = None
                self.shards = []
                self.shard_uids = []
            raise
        return meta

    def _translate_range(
        self, meta: ColumnMeta, shard_id: int, char_lo: int, char_hi: int
    ) -> tuple[int, int] | None:
        """A global code range in one shard's local alphabet.

        ``None`` when the shard holds nothing in the range (the shard
        is pruned from the scatter entirely).  Dynamic shards store
        global codes, so translation is the identity.
        """
        domain = meta.domains.get(shard_id)
        if domain is None:
            return char_lo, char_hi
        lo = bisect.bisect_left(domain, char_lo)
        hi = bisect.bisect_right(domain, char_hi) - 1
        return (lo, hi) if lo <= hi else None

    def _meta(self, name: str) -> ColumnMeta:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(f"unknown column {name!r}") from None

    def _check_shard(self, shard_id: int) -> None:
        if shard_id < 0 or shard_id >= self.num_shards:
            raise InvalidParameterError(
                f"shard {shard_id} outside [0, {self.num_shards})"
            )

    def shard_column(self, name: str, shard_id: int) -> EngineColumn:
        """One shard's :class:`EngineColumn` for a cluster column."""
        self._meta(name)
        self._check_shard(shard_id)
        return self.shards[shard_id].column(name)

    def drop_column(self, name: str) -> None:
        with self._serve_lock:
            self._meta(name)
            for shard_id, shard in enumerate(self.shards):
                shard.drop_column(name)
                self._ship_delta(shard_id, ("drop_column", name))
            self.shared_cache.invalidate(column=name)
            del self.columns[name]
            self.mutations += 1
            self._log(("drop_column", name))

    # ------------------------------------------------------------------
    # RID bookkeeping
    # ------------------------------------------------------------------

    def shard_lengths(self, name: str) -> list[int]:
        """Each shard's current (possibly hole-y) position-space size."""
        self._meta(name)
        return [shard.column(name).n for shard in self.shards]

    def total_rows(self, name: str) -> int:
        return sum(self.shard_lengths(name))

    def backends(self, name: str) -> list[str]:
        """The backend serving each shard, in shard order."""
        self._meta(name)
        return [shard.column(name).spec.name for shard in self.shards]

    # ------------------------------------------------------------------
    # Queries (scatter-gather)
    # ------------------------------------------------------------------

    def _check_range(self, meta: ColumnMeta, char_lo: int, char_hi: int) -> None:
        if char_lo < 0 or char_hi >= meta.sigma or char_lo > char_hi:
            raise QueryError(
                f"invalid character range [{char_lo}, {char_hi}] for "
                f"alphabet of size {meta.sigma}"
            )

    def _fetch_shard_measured(
        self, name: str, meta: ColumnMeta, shard_id: int, lo: int, hi: int
    ) -> tuple[list[int], Snapshot]:
        """One shard's local-space answer plus its I/O, in-process.

        The local-executor task body: consult the shared cache, then
        the shard's own engine, measuring the transfer delta.  Keys
        carry the shard's stable *uid*, not its position, so entries
        survive lifecycle operations on other shards and a post-split
        shard can never alias a retired shard's entries.
        """
        column = self.shards[shard_id].column(name)
        key = shared_key(
            name, meta.epoch, self.shard_uids[shard_id], column.version,
            lo, hi,
        )
        hit = self.shared_cache.get(key)
        if hit is not None:
            return hit, Snapshot()
        replica = self._replica_fetch(name, shard_id, lo, hi)
        if replica is not None:
            positions, io = replica
            self.shared_cache.put(key, positions)
            return positions, io
        result, io = self.shards[shard_id].query_measured(name, lo, hi)
        positions = result.positions()
        self.shared_cache.put(key, positions)
        return positions, io

    def _fetch_shard_measured_traced(
        self,
        name: str,
        meta: ColumnMeta,
        shard_id: int,
        lo: int,
        hi: int,
        trace_id: str,
    ) -> tuple[list[int], Snapshot, dict]:
        """Traced twin of :meth:`_fetch_shard_measured`: adds a span.

        The span is built inside the task body (thread-safe — it
        touches no shared trace state) and grafted by the coordinator
        at gather time, exactly like a resident worker's shipped span.
        Its ``bits_read`` tag is taken from the *same* Snapshot the
        reply carries, so summed span bits always equal the
        ``scatter_io`` accounting exactly.
        """
        clock = self._clock()
        uid = self.shard_uids[shard_id]
        column = self.shards[shard_id].column(name)
        key = shared_key(name, meta.epoch, uid, column.version, lo, hi)
        t0 = clock()
        hit = self.shared_cache.get(key)
        if hit is not None:
            span = Span("cache_lookup", t0=t0, t1=clock())
            span.tags.update(
                trace_id=trace_id, tier="shared", hit=True,
                column=name, shard_uid=uid, bits_read=0,
            )
            return hit, Snapshot(), span.to_dict()
        replica = self._replica_fetch(name, shard_id, lo, hi)
        if replica is not None:
            positions, io = replica
            self.shared_cache.put(key, positions)
            span = Span("replica_fetch", t0=t0, t1=clock())
            span.tags.update(
                trace_id=trace_id, shard_uid=uid, column=name,
                char_lo=lo, char_hi=hi, bits_read=io.bits_read,
                rids=len(positions),
            )
            return positions, io, span.to_dict()
        result, io = self.shards[shard_id].query_measured(name, lo, hi)
        positions = result.positions()
        self.shared_cache.put(key, positions)
        span = Span("leaf_fetch", t0=t0, t1=clock())
        span.tags.update(
            trace_id=trace_id, shard_uid=uid, column=name,
            char_lo=lo, char_hi=hi, backend=column.spec.name,
            cache="miss", bits_read=io.bits_read, reads=io.reads,
            rids=len(positions),
        )
        return positions, io, span.to_dict()

    def _submit_fetch(
        self,
        name: str,
        meta: ColumnMeta,
        shard_id: int,
        lo: int,
        hi: int,
        trace=None,
        defer: "list | None" = None,
    ):
        """Launch one shard fetch; resolves to ``(positions, io)``.

        Local executors run :meth:`_fetch_shard_measured` through
        their ``submit``; a resident executor is asked through its
        pipelined query API, with the shared cache consulted here (the
        coordinator side — workers hold engines, not the cache) and
        populated when the reply is consumed.

        With ``trace`` (an open :class:`repro.obs.Trace`) every future
        instead resolves to ``(positions, io, span dict | None)``:
        local fetches build the span inside the task body, resident
        workers ship theirs back on the widened pipelined reply, and a
        coordinator-side shared-cache hit records a synchronous
        ``cache_lookup`` event (span slot ``None``).

        With ``defer`` (a list) a resident cache *miss* is not sent
        yet: its ``((uid, name, lo, hi), absorb)`` pair is appended
        and :data:`_DEFERRED` returned, so the caller can ship the
        whole scatter grouped per worker
        (:meth:`~repro.cluster.executor.ProcessExecutor.\
submit_query_group`) instead of one message per shard.
        """
        if not self._resident:
            if trace is None:
                return self.executor.submit(
                    self._fetch_shard_measured, name, meta, shard_id, lo, hi
                )
            return self.executor.submit(
                self._fetch_shard_measured_traced,
                name, meta, shard_id, lo, hi, trace.trace_id,
            )
        uid = self.shard_uids[shard_id]
        column = self.shards[shard_id].column(name)
        key = shared_key(name, meta.epoch, uid, column.version, lo, hi)
        hit = self.shared_cache.get(key)
        if hit is not None:
            if trace is None:
                return CompletedFuture((hit, Snapshot()))
            trace.event(
                "cache_lookup", tier="shared", hit=True,
                column=name, shard_uid=uid, bits_read=0,
            )
            return CompletedFuture((hit, Snapshot(), None))
        replica = self._replica_fetch(name, shard_id, lo, hi)
        if replica is not None:
            positions, io = replica
            self.shared_cache.put(key, positions)
            if trace is None:
                return CompletedFuture((positions, io))
            trace.event(
                "replica_fetch", column=name, shard_uid=uid,
                char_lo=lo, char_hi=hi, bits_read=io.bits_read,
            )
            return CompletedFuture((positions, io, None))
        self._note_flush(trace, uid)

        if trace is None:

            def absorb(reply: tuple[list[int], Snapshot]):
                positions, io = reply
                self.shared_cache.put(key, positions)
                return positions, io

        else:

            def absorb(reply):
                positions, io, span = reply
                self.shared_cache.put(key, positions)
                return positions, io, span

        if defer is not None:
            defer.append(((uid, name, lo, hi), absorb))
            return _DEFERRED
        future = self.executor.submit_query(
            uid, name, lo, hi,
            trace=None if trace is None else trace.trace_id,
        )
        return MappedFuture(future, absorb)

    @staticmethod
    def _drain(futures) -> None:
        """Resolve leftover futures, discarding results and errors.

        Abandoning a pipelined request would leave its reply in a
        resident worker's FIFO pipe and poison the next query; both
        the materialized scatter's error path and the streaming
        gather's early-close path drain through here.
        """
        for future in futures:
            if future is None:
                continue
            try:
                future.result()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------

    @contextmanager
    def _observed(self, op: str, report_fn=None):
        """Frame one top-level cluster operation for tracing/metrics.

        Mirrors ``QueryEngine._observed``: only the *outermost* entry
        (depth 0) begins a trace, observes latency metrics, and feeds
        the slow-query log; nested entries (``topk`` → ``count_by``)
        yield the already-active trace so their spans stitch into one
        tree and nothing is double-counted.  ``report_fn`` builds the
        :class:`~repro.query.PlanReport` lazily — only queries that
        actually cross the slow threshold pay for it.
        """
        with self._serve_lock:
            if self._op_depth:
                self._op_depth += 1
                try:
                    yield self._active_trace
                finally:
                    self._op_depth -= 1
                return
            tracer = self.tracer
            trace = (
                tracer.begin(op)
                if tracer is not None and tracer.enabled
                else None
            )
            clock = tracer.clock if tracer is not None else time.monotonic
            self._active_trace = trace
            self._op_depth = 1
            t0 = clock()
            try:
                yield trace
            finally:
                elapsed = clock() - t0
                self._op_depth = 0
                self._active_trace = None
                if trace is not None:
                    tracer.finish(trace)
                metrics = self.metrics
                if metrics is not None:
                    metrics.inc("query.count")
                    metrics.observe("query.latency_s", elapsed)
                slow_log = self.slow_log
                if slow_log is not None:
                    slow_log.observe(
                        op, elapsed, trace=trace, report_fn=report_fn
                    )

    def _clock(self):
        """The span clock: the tracer's when attached, monotonic else."""
        tracer = self.tracer
        return tracer.clock if tracer is not None else time.monotonic

    def _note_flush(self, trace, uid: int) -> None:
        """Attribute an imminent delta-batch flush to its flushing query.

        Buffered coalescable deltas are shipped lazily, riding ahead
        of the next query on that shard's pipe — so the *query* is the
        call site that pays the flush.  A traced resident submit calls
        this first, recording a zero-duration ``delta_flush`` event
        with the batch size about to go out.
        """
        if trace is None:
            return
        counter = getattr(self.executor, "pending_delta_count", None)
        if counter is None:
            return
        n = counter(uid)
        if n:
            trace.event("delta_flush", shard_uid=uid, deltas=n)

    # ------------------------------------------------------------------
    # Predicate serving (the shared repro.query path)
    # ------------------------------------------------------------------

    def _compile_pred(self, pred: Pred) -> tuple[Plan, int]:
        """Compile a code-space predicate against the cluster's columns.

        Mirrors ``QueryEngine._compile_pred``: eager validation of
        every leaf's column, one shared row universe across the
        predicate's columns (drifted columns serve positive plans
        against the widest universe, ``Not``/``TRUE`` are rejected).
        """
        plan = compile_pred(pred, lambda name: self._meta(name).sigma)
        return plan, resolve_universe(plan, self.total_rows)

    def _fetch_plan_leaves(
        self, plan: Plan, universe: int, trace=None
    ) -> list[RangeResult]:
        """Scatter-fetch every unique leaf of a compiled plan.

        Every (leaf, shard) fetch is launched before the first is
        collected, so per-shard work overlaps under any executor that
        buys overlap.  Under a *resident* executor the fetches are
        additionally *batched*: all of one column's leaf intervals
        missing from the shared cache go to a shard's worker as one
        pipelined ``leaves`` message (the compiled-leaf fetch op), so
        a wide IN-list costs one round-trip per shard, not one per
        member.  Per-shard answers consult and populate the shared
        result cache exactly like single-leaf scatters, then
        offset-translate into one global :class:`RangeResult` per
        leaf.  The fetch order is canonical (leaf-table order within
        each shard), so a fixed workload reads identical bits under
        every executor.

        With ``trace`` every fetch carries the trace id: local task
        bodies build their spans in-task, resident workers ship one
        span per batched interval on the widened reply, and all of
        them graft into the open ``scatter`` span at gather time.
        """
        per_leaf: list[list[list[int] | None]] = [
            [None] * self.num_shards for _ in plan.leaves
        ]
        metas = {col: self._meta(col) for col in {l[0] for l in plan.leaves}}
        offsets = {
            col: offsets_of(self.shard_lengths(col)) for col in metas
        }
        # (entries, future) pairs; entries = [(leaf_idx, shard_id, key)]
        # with key None for local single fetches (their task body does
        # its own cache bookkeeping).
        pending: list[tuple[list[tuple], object]] = []
        bits = 0
        scatter_cm = (
            trace.span("scatter", leaves=len(plan.leaves))
            if trace is not None
            else nullcontext()
        )
        with scatter_cm:
            for shard_id in range(self.num_shards):
                batches: dict[str, list[tuple]] = {}
                for leaf_idx, (col, lo, hi) in enumerate(plan.leaves):
                    meta = metas[col]
                    local = self._translate_range(meta, shard_id, lo, hi)
                    if local is None:
                        per_leaf[leaf_idx][shard_id] = []
                        continue
                    if not self._resident:
                        task = (
                            (
                                self._fetch_shard_measured,
                                col, meta, shard_id, *local,
                            )
                            if trace is None
                            else (
                                self._fetch_shard_measured_traced,
                                col, meta, shard_id, *local,
                                trace.trace_id,
                            )
                        )
                        pending.append(
                            (
                                [(leaf_idx, shard_id, None)],
                                self.executor.submit(*task),
                            )
                        )
                        continue
                    key = shared_key(
                        col, meta.epoch, self.shard_uids[shard_id],
                        self.shards[shard_id].column(col).version, *local,
                    )
                    hit = self.shared_cache.get(key)
                    if hit is not None:
                        if trace is not None:
                            trace.event(
                                "cache_lookup", tier="shared", hit=True,
                                column=col,
                                shard_uid=self.shard_uids[shard_id],
                                bits_read=0,
                            )
                        per_leaf[leaf_idx][shard_id] = hit
                        continue
                    replica = self._replica_fetch(col, shard_id, *local)
                    if replica is not None:
                        positions, io = replica
                        self.shared_cache.put(key, positions)
                        self.scatter_io.add(io)
                        bits += io.bits_read
                        self.gather_rids += len(positions)
                        if trace is not None:
                            trace.event(
                                "replica_fetch", column=col,
                                shard_uid=self.shard_uids[shard_id],
                                bits_read=io.bits_read,
                            )
                        per_leaf[leaf_idx][shard_id] = positions
                    else:
                        batches.setdefault(col, []).append(
                            (leaf_idx, key, local)
                        )
                for col, entries in batches.items():
                    uid = self.shard_uids[shard_id]
                    self._note_flush(trace, uid)
                    future = self.executor.submit_leaves(
                        uid,
                        col,
                        [local for _, _, local in entries],
                        trace=None if trace is None else trace.trace_id,
                    )
                    pending.append(
                        (
                            [
                                (leaf_idx, shard_id, key)
                                for leaf_idx, key, _ in entries
                            ],
                            future,
                        )
                    )
            for i, (entries, future) in enumerate(pending):
                try:
                    reply = future.result()
                except BaseException:
                    self._drain(f for _, f in pending[i + 1 :])
                    raise
                if entries[0][2] is None:  # local dialect: one (pos, io)
                    if trace is None:
                        positions, io = reply
                    else:
                        positions, io, span = reply
                        if span is not None:
                            trace.graft([span])
                    self.scatter_io.add(io)
                    bits += io.bits_read
                    self.gather_rids += len(positions)
                    leaf_idx, shard_id, _ = entries[0]
                    per_leaf[leaf_idx][shard_id] = positions
                else:  # resident dialect: one reply per batched interval
                    if trace is None:
                        pairs = reply
                    else:
                        pairs, spans = reply
                        trace.graft(spans)
                    for (leaf_idx, shard_id, key), (positions, io) in zip(
                        entries, pairs
                    ):
                        self.scatter_io.add(io)
                        bits += io.bits_read
                        self.gather_rids += len(positions)
                        self.shared_cache.put(key, positions)
                        per_leaf[leaf_idx][shard_id] = positions
        if self.metrics is not None and bits:
            self.metrics.inc("query.bits_read", bits)
        merge_cm = (
            trace.span("gather_merge") if trace is not None else nullcontext()
        )
        with merge_cm:
            results: list[RangeResult] = []
            for leaf_idx, (col, _, _) in enumerate(plan.leaves):
                off = offsets[col]
                merged: list[int] = []
                for shard_id in range(self.num_shards):
                    positions = per_leaf[leaf_idx][shard_id]
                    merged.extend(off[shard_id] + p for p in positions)
                results.append(RangeResult(merged, universe))
        return results

    def _query_pred(self, pred: Pred) -> RangeResult:
        with self._observed(
            "query", report_fn=lambda: self._plan_report(pred)
        ) as trace:
            if trace is not None:
                with trace.span("plan", predicate=repr(pred)):
                    plan, universe = self._compile_pred(pred)
            else:
                plan, universe = self._compile_pred(pred)
            leaf_results = self._fetch_plan_leaves(
                plan, universe, trace=trace
            )
            return evaluate(plan, leaf_results, universe)

    # ------------------------------------------------------------------
    # Aggregates (plan pushdown: counts cross the pipes, never RIDs)
    # ------------------------------------------------------------------

    def _fold_shard_local(
        self, shard_id: int, payload: tuple
    ) -> tuple["int | bool | dict[int, int]", Snapshot]:
        """The local-executor task body of one aggregate fold.

        Runs the *same* :func:`~repro.cluster.worker.\
evaluate_shard_fold` a resident worker runs — including its deliberate
        shared-cache bypass — against the coordinator's own shard
        engine, so value and measured I/O are executor-independent.
        """
        return evaluate_shard_fold(self.shards[shard_id], payload)

    def _fold_shard_local_traced(
        self, shard_id: int, payload: tuple, trace_id: str
    ) -> tuple:
        """Traced twin of :meth:`_fold_shard_local`: adds a span dict.

        Mirrors the resident worker's ``worker_fold`` span under the
        name ``shard_fold`` — the same op running in the coordinator's
        process; span bits come from the reply's own Snapshot.
        """
        clock = self._clock()
        t0 = clock()
        value, io = evaluate_shard_fold(self.shards[shard_id], payload)
        span = Span("shard_fold", t0=t0, t1=clock())
        span.tags.update(
            trace_id=trace_id,
            shard_uid=self.shard_uids[shard_id],
            mode=payload[0],
            bits_read=io.bits_read,
            reads=io.reads,
        )
        return value, io, span.to_dict()

    def _specialize_shard(
        self, plan: Plan, metas: dict, shard_id: int
    ) -> tuple[tuple, tuple]:
        """One shard's localized (leaves, root) via its alphabets."""
        return specialize(
            plan,
            lambda col, lo, hi: self._translate_range(
                metas[col], shard_id, lo, hi
            ),
        )

    def _fold_metas(self, plan: Plan, group: "str | None") -> dict:
        metas = {col: self._meta(col) for col in plan.columns}
        if group is not None and group not in metas:
            metas[group] = self._meta(group)
        return metas

    def _scatter_fold(
        self,
        mode: str,
        plan: Plan,
        group: "str | None" = None,
        trace=None,
    ) -> list:
        """Scatter one aggregate plan; gather per-shard fold values.

        Shards partition the RID universe and every plan operator acts
        row-wise, so the global aggregate decomposes exactly into
        per-shard folds.  Each shard's plan is first *specialized*
        (leaves translated onto its local alphabets, pruned leaves
        constant-folded): an ``EMPTY`` root contributes its identity
        with no round trip at all, an ``ALL`` root under
        ``count``/``exists`` is answered from the coordinator's own
        row count — ``Not`` over a fully-pruned leaf means *every*
        shard row, no worker needed — and only genuinely mixed shards
        ship a fold task.  Under a resident executor that task is the
        ``fold`` pipe op: the whole shard-local plan evaluates in the
        worker and one number (plus its I/O snapshot) comes back;
        ``gather_rids`` is untouched because no positions cross.
        """
        metas = self._fold_metas(plan, group)
        columns = tuple(sorted(metas))
        anchor = columns[0]
        empty_value = {"count": 0, "exists": False, "count_by": {}}[mode]
        values: list = [None] * self.num_shards
        pending: list[tuple[int, object]] = []
        bits = 0
        scatter_cm = (
            trace.span("scatter", mode=mode)
            if trace is not None
            else nullcontext()
        )
        with scatter_cm:
            for shard_id in range(self.num_shards):
                leaves, root = self._specialize_shard(plan, metas, shard_id)
                if root[0] == EMPTY:
                    values[shard_id] = empty_value
                    continue
                if root[0] == ALL and mode in ("count", "exists"):
                    rows = self.shards[shard_id].column(anchor).n
                    values[shard_id] = rows if mode == "count" else rows > 0
                    continue
                payload = (mode, columns, leaves, root, group)
                if self.replicas is not None:
                    versions = {
                        col: self.shards[shard_id].column(col).version
                        for col in columns
                    }
                    hit = self.replicas.fold(
                        self.shard_uids[shard_id], payload, versions
                    )
                    if hit is not None:
                        value, io = hit
                        self.scatter_io.add(io)
                        bits += io.bits_read
                        if trace is not None:
                            trace.event(
                                "replica_fold", mode=mode,
                                shard_uid=self.shard_uids[shard_id],
                                bits_read=io.bits_read,
                            )
                        values[shard_id] = value
                        continue
                if self._resident:
                    uid = self.shard_uids[shard_id]
                    self._note_flush(trace, uid)
                    future = self.executor.submit_fold(
                        uid, payload,
                        trace=None if trace is None else trace.trace_id,
                    )
                elif trace is None:
                    future = self.executor.submit(
                        self._fold_shard_local, shard_id, payload
                    )
                else:
                    future = self.executor.submit(
                        self._fold_shard_local_traced,
                        shard_id, payload, trace.trace_id,
                    )
                pending.append((shard_id, future))
            for i, (shard_id, future) in enumerate(pending):
                try:
                    reply = future.result()
                except BaseException:
                    self._drain(f for _, f in pending[i + 1 :])
                    raise
                if trace is None:
                    value, io = reply
                else:
                    value, io, span = reply
                    if span is not None:
                        trace.graft([span])
                self.scatter_io.add(io)
                bits += io.bits_read
                values[shard_id] = value
        if self.metrics is not None and bits:
            self.metrics.inc("query.bits_read", bits)
        return values

    def count(self, pred: "Pred | Mapping[str, tuple[int, int]]") -> int:
        """How many rows match — the coordinator only sums.

        Each shard folds its localized plan in cardinality space
        (worker-resident under a process executor) and reports one
        integer; fully-pruned shards and shards a complement fully
        covers are answered without any round trip.  No RID list is
        materialized anywhere — not per shard, not globally.
        """
        if not isinstance(pred, Pred):
            warn_mapping_adapter("ClusterEngine.count")
            pred = mapping_to_pred(pred)
        with self._observed(
            "count", report_fn=lambda: self._plan_report(pred)
        ) as trace:
            if trace is not None:
                with trace.span("plan", predicate=repr(pred)):
                    plan, _ = self._compile_pred(pred)
            else:
                plan, _ = self._compile_pred(pred)
            return sum(self._scatter_fold("count", plan, trace=trace))

    def exists(self, pred: "Pred | Mapping[str, tuple[int, int]]") -> bool:
        """Does any row match?  Walks shards and stops at first evidence.

        Shards are probed one at a time in shard order — each fold
        itself short-circuits inside the shard — and the walk ends at
        the first non-empty fold, so later shards are never queried.
        The walk order is deterministic, making the bits read
        identical under every executor.
        """
        if not isinstance(pred, Pred):
            warn_mapping_adapter("ClusterEngine.exists")
            pred = mapping_to_pred(pred)
        with self._observed(
            "exists", report_fn=lambda: self._plan_report(pred)
        ) as trace:
            if trace is not None:
                with trace.span("plan", predicate=repr(pred)):
                    plan, _ = self._compile_pred(pred)
            else:
                plan, _ = self._compile_pred(pred)
            metas = self._fold_metas(plan, None)
            columns = tuple(sorted(metas))
            anchor = columns[0]
            scatter_cm = (
                trace.span("scatter", mode="exists")
                if trace is not None
                else nullcontext()
            )
            with scatter_cm:
                for shard_id in range(self.num_shards):
                    leaves, root = self._specialize_shard(
                        plan, metas, shard_id
                    )
                    if root[0] == EMPTY:
                        continue
                    if root[0] == ALL:
                        if self.shards[shard_id].column(anchor).n > 0:
                            return True
                        continue
                    payload = ("exists", columns, leaves, root, None)
                    if self.replicas is not None:
                        versions = {
                            col: self.shards[shard_id].column(col).version
                            for col in columns
                        }
                        hit = self.replicas.fold(
                            self.shard_uids[shard_id], payload, versions
                        )
                        if hit is not None:
                            value, io = hit
                            self.scatter_io.add(io)
                            if value:
                                return True
                            continue
                    if self._resident:
                        uid = self.shard_uids[shard_id]
                        self._note_flush(trace, uid)
                        future = self.executor.submit_fold(
                            uid, payload,
                            trace=(
                                None if trace is None else trace.trace_id
                            ),
                        )
                    elif trace is None:
                        future = self.executor.submit(
                            self._fold_shard_local, shard_id, payload
                        )
                    else:
                        future = self.executor.submit(
                            self._fold_shard_local_traced,
                            shard_id, payload, trace.trace_id,
                        )
                    reply = future.result()
                    if trace is None:
                        value, io = reply
                    else:
                        value, io, span = reply
                        if span is not None:
                            trace.graft([span])
                    self.scatter_io.add(io)
                    if value:
                        return True
                return False

    def count_by(
        self, group: str, pred: "Pred | None" = None
    ) -> dict[int, int]:
        """Matching-row counts per *global* code of ``group``.

        Every shard folds the predicate once and intersect-counts it
        against its local group-equality leaves, shipping a
        ``{local code: count}`` dict; the coordinator translates local
        codes through each static shard's domain back into global
        codes and sums.  Codes, counts and snapshots cross the pipes —
        positions never do.  ``pred=None`` counts all rows by group.
        """
        meta = self._meta(group)
        if pred is not None and not isinstance(pred, Pred):
            warn_mapping_adapter("ClusterEngine.count_by")
            pred = mapping_to_pred(pred)
        report_fn = (
            (lambda: self._plan_report(pred)) if pred is not None else None
        )
        with self._observed("count_by", report_fn=report_fn) as trace:
            if pred is None:
                plan = Plan(
                    normalized=TRUE,
                    leaves=(),
                    root=(ALL,),
                    columns=(group,),
                )
            else:
                plan_cm = (
                    trace.span("plan", predicate=repr(pred))
                    if trace is not None
                    else nullcontext()
                )
                with plan_cm:
                    plan = compile_pred(
                        pred, lambda name: self._meta(name).sigma
                    )
                    # The group column joins universe validation: its
                    # equality leaves execute in the same position
                    # space as the pred.
                    resolve_universe(
                        replace(
                            plan,
                            columns=tuple(
                                sorted(set(plan.columns) | {group})
                            ),
                        ),
                        self.total_rows,
                    )
            folds = self._scatter_fold("count_by", plan, group, trace=trace)
            merge_cm = (
                trace.span("gather_merge")
                if trace is not None
                else nullcontext()
            )
            with merge_cm:
                merged: dict[int, int] = {}
                for shard_id, shard_counts in enumerate(folds):
                    domain = meta.domains.get(shard_id)
                    for local_code, n in shard_counts.items():
                        code = (
                            local_code
                            if domain is None
                            else domain[local_code]
                        )
                        merged[code] = merged.get(code, 0) + n
            return merged

    def topk(
        self, group: str, pred: "Pred | None" = None, k: int = 10
    ) -> list[tuple[int, int]]:
        """The ``k`` most frequent group codes among matching rows.

        ``(code, count)`` pairs, count-descending, code ascending on
        ties — computed from one :meth:`count_by` pushdown.
        """
        if k <= 0:
            raise InvalidParameterError("topk requires k >= 1")
        counts = self.count_by(group, pred)
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def _plan_report(self, pred: Pred) -> PlanReport:
        plan, universe = self._compile_pred(pred)
        leaves = []
        for col, lo, hi in plan.leaves:
            shards = []
            predicted = 0.0
            live_cached: list[bool] = []
            for shard_id, shard_plan in enumerate(self.plan(col, lo, hi)):
                if shard_plan is None:
                    shards.append(
                        ShardLeafPlan(shard_id=shard_id, pruned=True)
                    )
                    continue
                shards.append(
                    ShardLeafPlan(
                        shard_id=shard_id,
                        pruned=False,
                        backend=shard_plan.spec.name,
                        family=shard_plan.spec.family,
                        estimated_cost_bits=shard_plan.estimated_cost_bits,
                        cached=shard_plan.cached,
                    )
                )
                live_cached.append(shard_plan.cached)
                if not shard_plan.cached:
                    predicted += shard_plan.estimated_cost_bits
            # A leaf every shard prunes reads no bits and sits in no
            # cache: live_cached stays empty, so cached must collapse
            # to False (not the vacuous all()) and predicted stays 0.
            leaves.append(
                LeafPlan(
                    column=col,
                    char_lo=lo,
                    char_hi=hi,
                    backend=None,
                    family=None,
                    estimated_cost_bits=predicted,
                    cached=bool(live_cached) and all(live_cached),
                    shards=tuple(shards),
                )
            )
        return PlanReport(
            kind="cluster",
            predicate=repr(plan.normalized),
            universe=universe,
            root=plan.root,
            leaves=tuple(leaves),
            num_shards=self.num_shards,
            estimated_total_bits=sum(
                leaf.estimated_cost_bits for leaf in leaves
            ),
        )

    def query(
        self,
        name: "str | Pred",
        char_lo: int | None = None,
        char_hi: int | None = None,
    ) -> RangeResult:
        """One query: a leaf scatter-gather, or a whole predicate.

        With a predicate, every unique leaf of the compiled plan is
        scatter-fetched (batched per shard under a resident executor)
        and the answers fold through the same
        :func:`repro.query.evaluate` path the single-process engine
        uses — the two serving layers execute the identical plan
        object.
        """
        if isinstance(name, Pred):
            if char_lo is not None or char_hi is not None:
                raise InvalidParameterError(
                    "a predicate query takes no range arguments"
                )
            return self._query_pred(name)
        if char_lo is None or char_hi is None:
            raise InvalidParameterError(
                "query(name, char_lo, char_hi) requires both bounds; "
                "pass a predicate for composed queries"
            )
        meta = self._meta(name)
        self._check_range(meta, char_lo, char_hi)
        with self._observed("query") as trace:
            lengths = self.shard_lengths(name)
            offsets = offsets_of(lengths)
            bits = 0
            scatter_cm = (
                trace.span(
                    "scatter", column=name,
                    char_lo=char_lo, char_hi=char_hi,
                )
                if trace is not None
                else nullcontext()
            )
            with scatter_cm:
                # Scatter: every shard fetch is launched before the
                # first is collected, so per-shard work overlaps under
                # any executor that buys overlap.  Static shards carry
                # a dense local alphabet; translating into it
                # canonicalizes the cache key and prunes shards the
                # range cannot touch at all.
                futures = []
                deferred: list = [] if self._resident else None
                deferred_slots: list[int] = []
                for shard_id in range(self.num_shards):
                    local = self._translate_range(
                        meta, shard_id, char_lo, char_hi
                    )
                    fetched = (
                        None
                        if local is None
                        else self._submit_fetch(
                            name, meta, shard_id, *local,
                            trace=trace, defer=deferred,
                        )
                    )
                    if fetched is _DEFERRED:
                        deferred_slots.append(shard_id)
                    futures.append(fetched)
                if deferred_slots:
                    # Ship the resident misses grouped per worker: a
                    # 16-shard scatter costs one round-trip per worker.
                    group = self.executor.submit_query_group(
                        [request for request, _ in deferred],
                        trace=None if trace is None else trace.trace_id,
                    )
                    for slot, (_, absorb), future in zip(
                        deferred_slots, deferred, group
                    ):
                        futures[slot] = MappedFuture(future, absorb)
                # Gather: shard i's global RIDs all precede shard
                # i+1's, so the k-way merge of these sorted disjoint
                # runs is a concatenation.
                merged: list[int] = []
                for shard_id, future in enumerate(futures):
                    if future is None:
                        continue
                    try:
                        reply = future.result()
                    except BaseException:
                        self._drain(futures[shard_id + 1 :])
                        raise
                    if trace is None:
                        positions, io = reply
                    else:
                        positions, io, span = reply
                        if span is not None:
                            trace.graft([span])
                    self.scatter_io.add(io)
                    bits += io.bits_read
                    self.gather_rids += len(positions)
                    offset = offsets[shard_id]
                    merged.extend(offset + p for p in positions)
            if self.metrics is not None and bits:
                self.metrics.inc("query.bits_read", bits)
            return RangeResult(merged, sum(lengths))

    def query_iter(self, name: str, char_lo: int, char_hi: int):
        """One global range query as a lazily gathered RID stream.

        Shard order is global RID order, so the k-way merge of sorted
        disjoint per-shard runs degenerates to concatenation; the
        stream visits shards left to right, materializing one shard's
        (individually shared-cacheable) answer at a time and
        translating local positions by the live offset.

        The walk is a *bounded prefetching bridge*: up to
        ``prefetch_depth`` later shards' fetches are launched while
        the current shard's buffer drains, so per-shard fetch latency
        overlaps the drain instead of serializing behind it (the
        depth defaults to 0 under the inline executor, where fetching
        ahead buys nothing).  Peak intermediate memory is therefore
        bounded by ``1 + prefetch_depth`` shard answers — still O(max
        shard answer), never O(global answer); ``gather_stats``
        records the high-water mark, each buffer acquired when the
        stream takes delivery and released as soon as it moves past
        (or is closed early).

        Tracing: called at depth 0 with an enabled tracer, the stream
        *owns* a ``query_iter`` trace, finished when the stream ends —
        exhausted or closed early.  Replies still in flight at an
        early close are drained (FIFO hygiene) and their spans offered
        to the already-finished trace, which drops and counts them
        (``Tracer.dropped_spans``) — abandoned pipelined replies can
        never leak spans into a later query's trace.  Called inside an
        observed op (a materialized ``select``), the fetch spans graft
        into that op's active trace instead.
        """
        meta = self._meta(name)
        self._check_range(meta, char_lo, char_hi)
        tracer = self.tracer
        trace = self._active_trace
        owned = None
        if (
            trace is None
            and self._op_depth == 0
            and tracer is not None
            and tracer.enabled
        ):
            owned = tracer.begin(
                "query_iter", column=name, char_lo=char_lo, char_hi=char_hi
            )
            trace = owned

        def gen():
            lengths = self.shard_lengths(name)
            offsets = offsets_of(lengths)
            tasks = []
            for shard_id in range(self.num_shards):
                local = self._translate_range(
                    meta, shard_id, char_lo, char_hi
                )
                if local is not None:
                    tasks.append((shard_id, local))
            in_flight: deque = deque()
            next_task = 0

            def top_up() -> None:
                nonlocal next_task
                while (
                    next_task < len(tasks)
                    and len(in_flight) < self.prefetch_depth + 1
                ):
                    shard_id, (lo, hi) = tasks[next_task]
                    next_task += 1
                    in_flight.append(
                        (
                            shard_id,
                            self._submit_fetch(
                                name, meta, shard_id, lo, hi, trace=trace
                            ),
                        )
                    )

            # With a prefetch window, the drained buffer is released
            # only once the next one is delivered — the two coexist at
            # the handoff and the accounting must say so.  Without one
            # (depth 0, the inline executor — whose submit() runs the
            # fetch on the spot) the next fetch must not even *start*
            # until the current buffer is drained and released: that
            # preserves the exact one-buffer bound of the serial walk
            # and its lazy I/O (an early-exiting consumer never pays
            # for shards it did not reach).
            overlap = self.prefetch_depth > 0
            held = 0
            top_up()
            try:
                while in_flight:
                    shard_id, future = in_flight.popleft()
                    reply = future.result()
                    if trace is None:
                        positions, io = reply
                    else:
                        positions, io, span = reply
                        if span is not None:
                            trace.graft([span])
                    self.scatter_io.add(io)
                    self.gather_rids += len(positions)
                    self.gather_stats.acquire(len(positions))
                    if held:
                        self.gather_stats.release(held)
                    held = len(positions)
                    if overlap:
                        # Keep the pipeline full while this buffer
                        # drains — the prefetch window.
                        top_up()
                    offset = offsets[shard_id]
                    for p in positions:
                        yield offset + p
                    if not overlap:
                        self.gather_stats.release(held)
                        held = 0
                        top_up()  # serial walk: fetch only when needed
            finally:
                if held:
                    self.gather_stats.release(held)
                if owned is not None:
                    # The stream is over (exhausted or closed early):
                    # finish the owned trace *first*, then resolve any
                    # abandoned pipelined replies — offering their
                    # spans to the finished trace drops and counts
                    # them, so they cannot leak into a later trace.
                    tracer.finish(owned)
                    for _, future in in_flight:
                        try:
                            reply = future.result()
                        except Exception:
                            continue
                        if (
                            isinstance(reply, tuple)
                            and len(reply) == 3
                            and reply[2] is not None
                        ):
                            owned.graft([reply[2]])
                else:
                    self._drain(future for _, future in in_flight)

        return gen()

    def select(
        self, conditions: "Pred | Mapping[str, tuple[int, int]]"
    ) -> list[int]:
        """Global RIDs matching a predicate (or a legacy mapping).

        The materialized form of :meth:`select_iter` — only the final
        answer is built as a list; every intermediate stays inside the
        streaming plan pipeline's per-shard buffers, so peak memory
        keeps the O(max shard answer per leaf) bound however large
        the per-leaf answers are.  (:meth:`query` over a predicate is
        the batch-scatter alternative: all leaves fetched upfront
        with per-shard batching and a complement-aware
        :class:`RangeResult` out.)  The ``{column: (lo, hi)}``
        conjunction mapping still works as a deprecated adapter.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("ClusterEngine.select")
            conditions = mapping_to_pred(conditions)
        with self._observed(
            "select", report_fn=lambda: self._plan_report(conditions)
        ) as trace:
            if trace is not None:
                with trace.span("plan", predicate=repr(conditions)):
                    plan, universe = self._compile_pred(conditions)
            else:
                plan, universe = self._compile_pred(conditions)
            return list(evaluate_iter(plan, self.query_iter, universe))

    def select_iter(
        self, conditions: "Pred | Mapping[str, tuple[int, int]]"
    ):
        """Streaming select over global RIDs.

        One lazy gather per plan leaf (each per-shard sub-answer
        individually shared-cacheable, prefetched up to
        ``prefetch_depth`` ahead), combined by the compiled plan's
        streaming pipeline: ``And`` merge-intersects in lockstep,
        ``Or`` merge-unions (the k-way merge-union alongside the
        existing merge-intersect), negated children subtract.  RIDs
        are emitted one at a time and peak intermediate memory stays
        bounded by ``(1 + prefetch_depth)`` shard answers per live
        leaf — O(block), not O(answer) — however huge the result.
        Predicates are validated and compiled eagerly, before the
        first RID is drawn.

        Observability: the stream counts one ``query.count`` at call
        time (a lazy stream's end-to-end latency belongs to its
        consumer, so no latency histogram or slow-log entry is
        recorded); under an enabled tracer each leaf's lazy gather
        owns its own ``query_iter`` trace — there is no single
        stitched trace for a streaming select.  Use :meth:`select`
        (same plan, materialized) for one trace per query.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("ClusterEngine.select_iter")
            conditions = mapping_to_pred(conditions)
        plan, universe = self._compile_pred(conditions)
        if self.metrics is not None and self._op_depth == 0:
            self.metrics.inc("query.count")
        return evaluate_iter(plan, self.query_iter, universe)

    def plan(
        self,
        name: "str | Pred",
        char_lo: int | None = None,
        char_hi: int | None = None,
    ) -> "list[QueryPlan | None] | PlanReport":
        """Per-shard plans for one leaf query, or a predicate's report.

        With a predicate, the typed :class:`~repro.query.PlanReport`
        whose leaf entries carry the full shard fan-out (per-shard
        backend verdict, predicted bits, shared-cache state, pruning).
        With ``(name, char_lo, char_hi)``, the per-shard
        :class:`QueryPlan` list: ``None`` marks a shard the range
        cannot touch (its local alphabet has no code inside it) — the
        scatter phase skips it entirely.  The ``cached`` flag reports
        the *shared* result cache — the tier the scatter consults
        first under every executor — not any one engine's private
        LRU, which under a resident executor lives in a worker
        process.
        """
        if isinstance(name, Pred):
            if char_lo is not None or char_hi is not None:
                raise InvalidParameterError(
                    "a predicate plan takes no range arguments"
                )
            return self._plan_report(name)
        if char_lo is None or char_hi is None:
            raise InvalidParameterError(
                "plan(name, char_lo, char_hi) requires both bounds; "
                "pass a predicate for composed queries"
            )
        meta = self._meta(name)
        plans: list[QueryPlan | None] = []
        for shard_id, shard in enumerate(self.shards):
            local = self._translate_range(meta, shard_id, char_lo, char_hi)
            if local is None:
                plans.append(None)
                continue
            plan = shard.plan(name, *local)
            key = shared_key(
                name, meta.epoch, self.shard_uids[shard_id],
                shard.column(name).version, plan.char_lo, plan.char_hi,
            )
            plans.append(replace(plan, cached=key in self.shared_cache))
        return plans

    def explain(
        self,
        name: "str | Pred | None" = None,
        char_lo: int | None = None,
        char_hi: int | None = None,
    ) -> "str | PlanReport":
        """Cluster-level report: a predicate, one leaf query, one
        column, or everything.

        Predicates answer with the typed
        :class:`~repro.query.PlanReport` (shard fan-out per leaf); the
        legacy string forms are unchanged.
        """
        if isinstance(name, Pred):
            if char_lo is not None or char_hi is not None:
                raise InvalidParameterError(
                    "a predicate explain takes no range arguments"
                )
            return self._plan_report(name)
        cache = self.shared_cache
        if name is not None and char_lo is not None and char_hi is not None:
            meta = self._meta(name)
            lines = [
                f"scatter-gather over {self.num_shards} shard(s), "
                f"merged by RID offset:"
            ]
            for shard_id, plan in enumerate(self.plan(name, char_lo, char_hi)):
                if plan is None:
                    lines.append(
                        f"  shard {shard_id}: pruned (no local code "
                        "in the range)"
                    )
                    continue
                column = self.shards[shard_id].column(name)
                key = shared_key(
                    name, meta.epoch, self.shard_uids[shard_id],
                    column.version, plan.char_lo, plan.char_hi,
                )
                shared = "shared-cache" if key in cache else "miss"
                lines.append(
                    f"  shard {shard_id}: {plan.describe()} [{shared}]"
                )
            return "\n".join(lines)
        if name is not None:
            meta = self._meta(name)
            lines = [
                f"column {name!r}: {self.num_shards} shard(s), "
                f"{self.total_rows(name)} rows, dynamism={meta.dynamism}"
            ]
            for shard_id, shard in enumerate(self.shards):
                column = shard.column(name)
                lines.append(
                    f"  shard {shard_id}: n={column.n} "
                    f"H0={column.stats.h0:.3f} -> {column.spec.name} "
                    f"[{column.spec.family}] v{column.version}"
                )
            return "\n".join(lines)
        hit_rate = getattr(cache, "hit_rate", None)
        cache_note = (
            f", shared cache hit rate {hit_rate:.1%}"
            if hit_rate is not None
            else ""
        )
        lines = [
            f"cluster: {self.num_shards} shard(s), "
            f"{len(self.columns)} column(s), "
            f"{len(self.migrations)} migration(s), "
            f"{len(self.splits)} split(s), "
            f"{len(self.merges)} merge(s){cache_note}"
        ]
        for name_ in self.columns:
            lines.append(f"  {name_}: {' | '.join(self.backends(name_))}")
        return "\n".join(lines)

    def stats(self) -> ClusterStats:
        """One typed, JSON-serializable snapshot of the cluster.

        Embeds the live accounting objects by value — ``scatter_io``
        as a :class:`~repro.iomodel.stats.Snapshot`, the streaming
        gather's :class:`GatherStats`, the resident executor's
        ``op_counts`` (empty under local executors; see
        ``ProcessExecutor.reset_op_counts`` for windowing) — plus
        per-shard rows/heat/backends, the shared cache's tier
        counters, lifecycle history lengths, and, when attached, the
        metrics registry dump and slow-query-log depth.  Resident
        executors contribute their ``worker_deaths`` count; an
        attached :class:`~repro.serve.ReplicaSet` contributes its
        ``stats().to_dict()`` snapshot.  Call ``.to_dict()`` to feed
        ``json.dumps``.
        """
        with self._serve_lock:
            return self._stats_impl()

    def _stats_impl(self) -> ClusterStats:
        cache = self.shared_cache
        shared = None
        if hasattr(cache, "hits"):
            try:
                size = len(cache)
            except TypeError:
                size = 0
            shared = CacheTierStats(
                tier="shared",
                hits=cache.hits,
                misses=cache.misses,
                size=size,
                capacity=getattr(cache, "capacity", None) or 0,
                evictions=getattr(cache, "evictions", 0),
            )
        shards = tuple(
            ShardStats(
                shard_id=shard_id,
                uid=self.shard_uids[shard_id],
                rows=self._live_rows(shard_id),
                heat=self.shard_heat(shard_id),
                backends=tuple(
                    (name, shard.column(name).spec.name)
                    for name in self.columns
                ),
            )
            for shard_id, shard in enumerate(self.shards)
        )
        return ClusterStats(
            num_shards=self.num_shards,
            columns=tuple(self.columns),
            scatter_io=self.scatter_io.snapshot(),
            gather_rids=self.gather_rids,
            gather=GatherStats(
                live_rids=self.gather_stats.live_rids,
                peak_rids=self.gather_stats.peak_rids,
            ),
            shards=shards,
            op_counts=dict(getattr(self.executor, "op_counts", None) or {}),
            shared_cache=shared,
            migrations=len(self.migrations),
            splits=len(self.splits),
            merges=len(self.merges),
            metrics=(
                self.metrics.to_dict() if self.metrics is not None else None
            ),
            slow_queries=(
                len(self.slow_log) if self.slow_log is not None else 0
            ),
            worker_deaths=getattr(self.executor, "worker_deaths", 0),
            replicas=(
                self.replicas.stats().to_dict()
                if self.replicas is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Updates (routed to one shard; others' cache entries stay live)
    # ------------------------------------------------------------------

    def _check_updatable(self, name: str) -> None:
        # The cluster-level contract, not just the backends': after a
        # freeze (``migrate(dynamism="static")``) a shard may well keep
        # an update-capable backend the advisor re-picked — the column
        # is frozen all the same.
        if self.columns[name].dynamism == "static":
            raise UpdateError(
                f"column {name!r} is declared static; migrate it (or "
                "re-add it) with a dynamism level before updating"
            )

    def append(self, name: str, ch: int) -> None:
        """Append one row to a column (the last shard absorbs growth)."""
        with self._serve_lock:
            self._meta(name)
            self._check_updatable(name)
            shard_id = self.num_shards - 1
            self.shards[shard_id].append(name, ch)
            self._ship_delta(shard_id, ("append", name, ch))
            self._log(("append", name, ch))
            # Journal the logical update only: any auto-split or drift
            # migration below is re-derived by replaying it.
            with self._suppress_wal():
                self._after_update(name, shard_id)

    def change(self, name: str, global_pos: int, ch: int) -> None:
        with self._serve_lock:
            self._meta(name)
            self._check_updatable(name)
            shard_id, local = self._route(name, global_pos)
            self.shards[shard_id].change(name, local, ch)
            self._ship_delta(shard_id, ("change", name, local, ch))
            self._log(("change", name, global_pos, ch))
            with self._suppress_wal():
                self._after_update(name, shard_id)

    def delete(self, name: str, global_pos: int) -> None:
        with self._serve_lock:
            self._meta(name)
            self._check_updatable(name)
            shard_id, local = self._route(name, global_pos)
            self.shards[shard_id].delete(name, local)
            self._ship_delta(shard_id, ("delete", name, local))
            self._log(("delete", name, global_pos))
            with self._suppress_wal():
                self._after_update(name, shard_id, deleted=True)

    def _route(self, name: str, global_pos: int) -> tuple[int, int]:
        lengths = self.shard_lengths(name)
        return locate(offsets_of(lengths), sum(lengths), global_pos)

    def _after_update(
        self, name: str, shard_id: int, deleted: bool = False
    ) -> None:
        # The version bump already made this shard's keys unreachable;
        # eager eviction frees their capacity.  Other shards' entries
        # are untouched — that is the point of per-shard versioning.
        self.mutations += 1
        self.shared_cache.invalidate(
            column=name, shard_id=self.shard_uids[shard_id]
        )
        meta = self.columns[name]
        meta.updates_since_stat[shard_id] = (
            meta.updates_since_stat.get(shard_id, 0) + 1
        )
        if (
            self.drift_window is not None
            and meta.backend is None
            and shard_id not in meta.shard_pins
            and meta.updates_since_stat[shard_id] >= self.drift_window
        ):
            self._maybe_migrate(name, shard_id)  # resets the counter
        # Lifecycle last: a split/merge rebuilds the shard wholesale,
        # so any migration verdict above is absorbed into it anyway.
        if self._auto_split:
            self._auto_lifecycle(shard_id, may_shrink=deleted)

    # ------------------------------------------------------------------
    # Online backend migration
    # ------------------------------------------------------------------

    def _maybe_migrate(
        self, name: str, shard_id: int, spec: IndexSpec | None = None
    ) -> Migration:
        """Re-measure one shard and rebuild it if the verdict changed."""
        # The stats are fresh as of now, explicit call or drift
        # trigger: either way the drift clock restarts.
        self.columns[name].updates_since_stat[shard_id] = 0
        column = self.shards[shard_id].column(name)
        old = column.spec.name
        stats = column.restat()
        if spec is None:
            spec = self.advisor.pick(stats)
        if spec.name == old:
            return Migration(name, shard_id, old, old)
        column.rebuild(spec)
        if self.io_latency_s:
            column.apply_latency(self.io_latency_s)
        self._ship_delta(shard_id, ("rebuild", name, spec.name))
        # rebuild() bumped the version; evict the dead entries from
        # both tiers eagerly.
        self.shards[shard_id].cache.invalidate(lambda key: key[0] == name)
        self.shared_cache.invalidate(
            column=name, shard_id=self.shard_uids[shard_id]
        )
        migration = Migration(name, shard_id, old, spec.name)
        self.migrations.append(migration)
        return migration

    def migrate(
        self,
        name: str,
        shard_id: int | None = None,
        backend: str | None = None,
        dynamism: str | None = None,
    ) -> list[Migration]:
        """Explicitly re-fit a column's shards to their current data.

        Each target shard re-measures its :class:`WorkloadStats` and
        rebuilds when the advisor's verdict (or the pinned ``backend``)
        differs from what is serving.  A ``backend`` given for the
        whole column becomes its pin — recorded in the metadata
        exactly like an ``add_column`` pin, so drift auto-migration
        will not silently revert the operator's choice — and a later
        ``migrate()`` *without* a backend honors the standing pin
        rather than handing the column back to the advisor.  With
        ``shard_id`` the pin is recorded for that shard only: the
        other shards keep auto-migrating, the pinned shard is exempt
        until :meth:`unpin` (or a new pin) releases it.

        ``dynamism`` re-declares the column's update contract first —
        e.g. freezing an append-heavy column that went cold to
        ``"static"`` lets the advisor re-open the whole static pool.
        The contract is column-wide, so it cannot be combined with
        ``shard_id``.  A column built static cannot be *upgraded*: its
        shards were re-encoded onto local alphabets, which cannot
        absorb arbitrary routed characters — re-add the column
        instead.  Rebuilding compacts any pending deleted slots,
        exactly like a backend's own global rebuild.

        All arguments are validated before any state changes; a
        rejected call leaves the column exactly as it was.
        """
        meta = self._meta(name)
        # Validate everything, then mutate: a rejected call must leave
        # the column untouched.
        if shard_id is not None:
            self._check_shard(shard_id)
        spec = get_spec(backend) if backend is not None else None
        if dynamism is not None:
            if shard_id is not None:
                raise InvalidParameterError(
                    "dynamism is a column-wide contract; it cannot be "
                    "re-declared for a single shard"
                )
            if dynamism not in DYNAMISM_LEVELS:
                raise InvalidParameterError(
                    f"dynamism must be one of {DYNAMISM_LEVELS}, "
                    f"got {dynamism!r}"
                )
            if dynamism != "static" and any(
                domain is not None for domain in meta.domains.values()
            ):
                raise InvalidParameterError(
                    f"column {name!r} was built static (shards carry "
                    "local alphabets); it cannot be migrated to "
                    f"dynamism={dynamism!r} — re-add it instead"
                )
        # While frozen, the delete requirement is suspended with the
        # rest of the update contract — _check_updatable blocks deletes
        # anyway, and keeping it would confine the advisor to
        # delete-capable backends on a column that can never see
        # another delete.  The *declared* contract (meta.require_delete)
        # survives the freeze, so unfreezing restores it.
        effective = dynamism if dynamism is not None else meta.dynamism
        effective_delete = meta.require_delete and effective != "static"
        standing = {meta.backend, *meta.shard_pins.values()} - {None}
        for pinned in (
            {spec.name} if spec is not None else standing
        ):
            pinned_spec = get_spec(pinned)
            if not pinned_spec.serves(effective, effective_delete):
                raise InvalidParameterError(
                    f"backend {pinned!r} cannot serve dynamism="
                    f"{effective!r} require_delete={effective_delete}"
                )
            if meta.require_exact and not pinned_spec.exact:
                raise InvalidParameterError(
                    f"backend {pinned!r} is approximate; column "
                    f"{name!r} declares require_exact=True"
                )
        with self._serve_lock:
            if dynamism is not None:
                meta.dynamism = dynamism
            if backend is not None:
                if shard_id is None:
                    meta.backend = backend
                    meta.shard_pins.clear()
                else:
                    meta.shard_pins[shard_id] = backend
            targets = (
                range(self.num_shards) if shard_id is None else [shard_id]
            )
            out = []
            for target in targets:
                column = self.shards[target].column(name)
                if dynamism is not None:
                    column.stats = column.stats.with_(
                        dynamism=dynamism, require_delete=effective_delete
                    )
                    self._ship_delta(
                        target,
                        ("set_contract", name, dynamism, effective_delete),
                    )
                # Standing pins govern unless this call named a backend:
                # explicit argument > shard pin > column pin > advisor.
                pin = (
                    backend
                    or meta.shard_pins.get(target)
                    or meta.backend
                )
                target_spec = get_spec(pin) if pin is not None else None
                out.append(
                    self._maybe_migrate(name, target, spec=target_spec)
                )
            self.mutations += 1
            self._log(("migrate", name, shard_id, backend, dynamism))
            return out

    def unpin(self, name: str, shard_id: int | None = None) -> None:
        """Release a backend pin, returning control to the advisor.

        With ``shard_id`` only that shard's pin is cleared; without,
        both the column-wide pin and every per-shard pin go.  The next
        drift window (or explicit :meth:`migrate`) re-advises.
        """
        with self._serve_lock:
            meta = self._meta(name)
            if shard_id is None:
                meta.backend = None
                meta.shard_pins.clear()
            else:
                self._check_shard(shard_id)
                meta.shard_pins.pop(shard_id, None)
            # No mutations bump — answers are unchanged — but pins
            # steer future auto-migrations, so replay must see it.
            self._log(("unpin", name, shard_id))

    # ------------------------------------------------------------------
    # Shard lifecycle (split / merge / rebalance)
    # ------------------------------------------------------------------

    def _live_count(self, name: str, shard_id: int) -> int:
        codes = self.shards[shard_id].column(name).codes
        return sum(1 for c in codes if c is not None)

    def shard_heat(self, shard_id: int) -> int:
        """One shard's update traffic since its last restat, summed
        over columns — the drift detector's counters doing double duty
        as the lifecycle's heat signal."""
        self._check_shard(shard_id)
        return sum(
            meta.updates_since_stat.get(shard_id, 0)
            for meta in self.columns.values()
        )

    # ------------------------------------------------------------------
    # Cluster-wide I/O knobs (mirrored into resident replicas)
    # ------------------------------------------------------------------

    def set_io_latency(self, latency_s: float) -> None:
        """(Re)apply a per-transfer latency model to every shard disk.

        Applies to the local engines and — under a resident executor —
        to the worker replicas, and sticks: indexes built later
        (add_column, lifecycle rebuilds, migrations) inherit it.  Set
        it *after* the build when only query-path transfers should
        sleep (what the parallel benchmarks do).
        """
        if latency_s < 0:
            raise InvalidParameterError("latency_s must be >= 0")
        with self._serve_lock:
            self.io_latency_s = latency_s
            for shard_id, engine in enumerate(self.shards):
                for column in engine.columns.values():
                    column.apply_latency(latency_s)
                self._ship_delta(shard_id, ("set_latency", latency_s))
            self._log(("set_latency", latency_s))

    def drop_caches(self) -> None:
        """Run the next queries cold: flush every result and block cache.

        Clears the shared result cache, each shard engine's LRU, and
        each disk's internal-memory residency — locally and in any
        resident replicas.  A benchmarking/repro aid; answers are
        unaffected.
        """
        with self._serve_lock:
            self.shared_cache.invalidate()
            for engine in self.shards:
                engine.cache.invalidate()
                for column in engine.columns.values():
                    column.flush_disk_cache()
            if self.replicas is not None:
                self.replicas.drop_caches()
            if self._resident:
                # One broadcast per worker, not one delta per shard.
                self.executor.drop_caches_all()

    # ------------------------------------------------------------------
    # Durable persistence (repro.persist)
    # ------------------------------------------------------------------

    def checkpoint(self, directory: str, **kwargs):
        """Write a crash-safe checkpoint of this cluster into ``directory``.

        See :func:`repro.persist.checkpoint_cluster` — snapshots every
        shard under the serve lock, flips the ``CURRENT`` pointer
        atomically, then rotates the attached WAL (if any).
        """
        from ..persist.checkpoint import checkpoint_cluster

        return checkpoint_cluster(self, directory, **kwargs)

    @classmethod
    def restore(cls, directory: str, **kwargs) -> "ClusterEngine":
        """Cold-start a cluster from ``directory``'s checkpoint + WAL.

        See :func:`repro.persist.restore_cluster` for the knobs
        (executor, advisor, lazy mmap loading, WAL attachment).
        """
        from ..persist.checkpoint import restore_cluster

        return restore_cluster(directory, **kwargs)

    def close(self) -> None:
        """Retire this cluster's resident shard replicas, if any.

        Leaves the executor itself running — it may serve other
        clusters (shard uids are process-unique, so replicas never
        collide).  Harmless under a local executor.  An attached WAL
        is detached and closed — its last acknowledged record is
        already on disk, so this adds nothing but the file close.
        """
        with self._serve_lock:
            wal = self.detach_wal()
            if wal is not None:
                wal.close()
            if self.replicas is not None:
                self.replicas.close()
            if self._resident:
                for uid in self.shard_uids:
                    try:
                        self.executor.retire_shard(uid)
                    except Exception:  # best-effort: executor may be closed
                        pass

    def _live_rows(self, shard_id: int) -> int:
        """A shard's live row count: the max across its columns.

        Columns share one shard set but their RID spaces drift apart
        under single-column deletes, so sizing decisions go by the
        largest column — the one actually straining the shard.
        """
        counts = [self._live_count(name, shard_id) for name in self.columns]
        return max(counts) if counts else 0

    def _live_global_codes(self, name: str, shard_id: int) -> list[int]:
        """One shard's live codes, translated back to the global alphabet.

        Static shards store local codes; their domain maps them back.
        Pending deleted slots (``None`` holes) are dropped, exactly as
        any backend rebuild would compact them.
        """
        meta = self.columns[name]
        column = self.shards[shard_id].column(name)
        live = [c for c in column.codes if c is not None]
        domain = meta.domains.get(shard_id)
        if domain is not None:
            live = [domain[c] for c in live]
        return live

    def _build_shard_column(
        self,
        engine: QueryEngine,
        meta: ColumnMeta,
        global_codes: list[int],
        pin: str | None,
    ) -> list[int] | None:
        """Build one column slice into a fresh shard engine.

        Static slices re-apply §1.1's dictionary trick on their own
        codes (fresh local alphabet, fresh low-cardinality stats);
        dynamic slices keep the global alphabet.  Returns the new
        local domain (``None`` for dynamic slices).  Without a pin the
        per-shard advisor re-measures the slice and picks its backend.
        """
        if meta.dynamism == "static":
            domain = sorted(set(global_codes))
            local_of = {g: i for i, g in enumerate(domain)}
            codes = [local_of[c] for c in global_codes]
            sigma = len(domain)
        else:
            domain = None
            codes = list(global_codes)
            sigma = meta.sigma
        engine.add_column(
            meta.name,
            codes,
            sigma,
            dynamism=meta.dynamism,
            expected_selectivity=meta.expected_selectivity,
            require_exact=meta.require_exact,
            # A frozen column's delete requirement is suspended with
            # the rest of its update contract (mirrors migrate()).
            require_delete=meta.require_delete and meta.dynamism != "static",
            backend=pin,
            # Under a resident executor the worker replica serves every
            # query, so the coordinator keeps control-plane state only
            # (codes + stats + the advisor's verdict); the local index
            # builds lazily if something ever queries it directly.
            defer_index=self._resident,
        )
        column = engine.column(meta.name)
        if self.io_latency_s:
            column.apply_latency(self.io_latency_s)
        if self.metrics is not None:
            # Local shard disks report transfer counts into the
            # cluster's registry; resident replicas count worker-side
            # (their snapshots still fold into scatter_io here).
            column.apply_metrics(self.metrics)
        return domain

    def split_shard(self, shard_id: int) -> ShardSplit:
        """Split one shard into two halves, in place.

        Every column's slice is cut at its own live midpoint (pending
        deleted slots compact away, like any rebuild), and both halves
        are rebuilt through the per-shard advisor — static columns on
        fresh local dictionaries — unless a standing pin governs.  The
        halves receive fresh shard uids, so the split shard's
        shared-cache entries die with its retired uid while every
        sibling shard's hot entries keep serving; per-shard drift
        clocks restart and a per-shard pin carries to both halves.
        Everything is validated and built before the shard set
        mutates — a failed split leaves the cluster untouched.
        """
        with self._serve_lock:
            record = self._split_shard_impl(shard_id)
            self.mutations += 1
            self._log(("split", shard_id))
            return record

    def _split_shard_impl(self, shard_id: int) -> ShardSplit:
        self._check_shard(shard_id)
        if not self.columns:
            raise InvalidParameterError(
                "nothing to split: the cluster has no columns"
            )
        halves: dict[str, tuple[list[int], list[int]]] = {}
        for name in self.columns:
            live = self._live_global_codes(name, shard_id)
            if len(live) < 2:
                raise InvalidParameterError(
                    f"shard {shard_id} cannot split: column {name!r} "
                    f"holds {len(live)} live row(s)"
                )
            mid = len(live) // 2
            halves[name] = (live[:mid], live[mid:])
        record = ShardSplit(
            shard_id=shard_id,
            rows=self._live_rows(shard_id),
            left_rows=max(len(halves[n][0]) for n in halves),
            right_rows=max(len(halves[n][1]) for n in halves),
        )
        engines = [
            QueryEngine(advisor=self.advisor, cache_size=self.cache_size)
            for _ in range(2)
        ]
        new_domains: dict[str, list] = {}
        for name, meta in self.columns.items():
            pin = meta.shard_pins.get(shard_id) or meta.backend
            new_domains[name] = [
                self._build_shard_column(
                    engines[side], meta, halves[name][side], pin
                )
                for side in range(2)
            ]
        # Commit: splice the shard set, retire the old uid, remap the
        # positional per-shard metadata.
        old_uid = self.shard_uids[shard_id]
        self.shards[shard_id : shard_id + 1] = engines
        self.shard_uids[shard_id : shard_id + 1] = [
            self._new_uid(), self._new_uid(),
        ]
        for name, meta in self.columns.items():
            meta.domains = _remap_shard_dict(
                meta.domains, shard_id, 1, new_domains[name]
            )
            meta.updates_since_stat = _remap_shard_dict(
                meta.updates_since_stat, shard_id, 1, [0, 0]
            )
            pin = meta.shard_pins.get(shard_id)
            meta.shard_pins = _remap_shard_dict(
                meta.shard_pins, shard_id, 1,
                [_ABSENT, _ABSENT] if pin is None else [pin, pin],
            )
            self.shared_cache.invalidate(column=name, shard_id=old_uid)
        self._ship_retire(old_uid)
        self._ship_build(shard_id)
        self._ship_build(shard_id + 1)
        self._refresh_plan()
        self.splits.append(record)
        return record

    def merge_shards(self, left_id: int) -> ShardMerge:
        """Fuse shards ``left_id`` and ``left_id + 1`` into one.

        The concatenation of the two live slices (holes compacted) is
        rebuilt through the advisor — or through a pin both halves
        agree on — under a fresh shard uid, so both retired shards'
        shared-cache entries die while every other shard's survive.
        """
        with self._serve_lock:
            record = self._merge_shards_impl(left_id)
            self.mutations += 1
            self._log(("merge", left_id))
            return record

    def _merge_shards_impl(self, left_id: int) -> ShardMerge:
        self._check_shard(left_id)
        if left_id + 1 >= self.num_shards:
            raise InvalidParameterError(
                f"shard {left_id} has no right neighbor to merge with"
            )
        if not self.columns:
            raise InvalidParameterError(
                "nothing to merge: the cluster has no columns"
            )
        combined: dict[str, list[int]] = {}
        for name in self.columns:
            merged = self._live_global_codes(
                name, left_id
            ) + self._live_global_codes(name, left_id + 1)
            if not merged:
                raise InvalidParameterError(
                    f"cannot merge shards {left_id} and {left_id + 1}: "
                    f"column {name!r} would be empty"
                )
            combined[name] = merged
        record = ShardMerge(
            left_id=left_id,
            left_rows=self._live_rows(left_id),
            right_rows=self._live_rows(left_id + 1),
        )
        engine = QueryEngine(advisor=self.advisor, cache_size=self.cache_size)
        new_domains: dict[str, list[int] | None] = {}
        for name, meta in self.columns.items():
            pin = meta.shard_pins.get(left_id)
            if pin != meta.shard_pins.get(left_id + 1):
                pin = None  # the halves disagree; the advisor decides
            pin = pin or meta.backend
            new_domains[name] = self._build_shard_column(
                engine, meta, combined[name], pin
            )
        old_uids = list(self.shard_uids[left_id : left_id + 2])
        self.shards[left_id : left_id + 2] = [engine]
        self.shard_uids[left_id : left_id + 2] = [self._new_uid()]
        for name, meta in self.columns.items():
            meta.domains = _remap_shard_dict(
                meta.domains, left_id, 2, [new_domains[name]]
            )
            meta.updates_since_stat = _remap_shard_dict(
                meta.updates_since_stat, left_id, 2, [0]
            )
            pin = meta.shard_pins.get(left_id)
            keep = (
                pin
                if pin is not None and pin == meta.shard_pins.get(left_id + 1)
                else _ABSENT
            )
            meta.shard_pins = _remap_shard_dict(
                meta.shard_pins, left_id, 2, [keep]
            )
            for uid in old_uids:
                self.shared_cache.invalidate(column=name, shard_id=uid)
        for uid in old_uids:
            self._ship_retire(uid)
        self._ship_build(left_id)
        self._refresh_plan()
        self.merges.append(record)
        return record

    def _refresh_plan(self) -> None:
        # Keep the plan authoritative for slices()/bounds() consumers:
        # re-derive it from the reference column's live lengths (the
        # columns may drift apart under single-column deletes; routing
        # always goes through per-column prefix sums anyway).
        name = next(iter(self.columns))
        self.plan_ = plan_from_lengths(
            [shard.column(name).n for shard in self.shards]
        )

    def _splittable(self, shard_id: int) -> bool:
        return all(
            self._live_count(name, shard_id) >= 2 for name in self.columns
        )

    def _auto_lifecycle(self, shard_id: int, may_shrink: bool = False) -> None:
        """The per-update sizing policy: split past the target, merge
        below the floor.  One update moves one row, so at most one
        operation is ever needed here; :meth:`rebalance` handles
        arbitrary imbalance.

        Two cheap prechecks keep the per-update cost O(columns), not
        O(shard rows): live rows never exceed a column's position-space
        length ``n``, so the split scan only runs once some column's
        ``n`` crosses the target; and only a delete can drop live rows
        below the merge floor, so the merge scan runs on deletes only.
        (A shard left under the floor while its merges were blocked is
        an optimization gap, not a correctness one — the next delete
        routed to it, or an explicit :meth:`rebalance`, sweeps it up.)
        """
        target = self._target_shard_rows
        shard = self.shards[shard_id]
        if any(shard.column(name).n > target for name in self.columns):
            if self._live_rows(shard_id) > target:
                if self._splittable(shard_id):
                    self.split_shard(shard_id)
                return
        if (
            may_shrink
            and self._min_shard_rows is not None
            and self.num_shards > 1
            and self._live_rows(shard_id) < self._min_shard_rows
        ):
            self._try_merge(shard_id, target)

    def _try_merge(self, shard_id: int, target: int) -> bool:
        """Fuse an underfull shard into its smaller neighbor — but only
        when the union stays within the split threshold, so a merge can
        never trigger an immediate re-split (no oscillation)."""
        neighbors = sorted(
            (s for s in (shard_id - 1, shard_id + 1)
             if 0 <= s < self.num_shards),
            key=lambda s: (self._live_rows(s), s),
        )
        for neighbor in neighbors:
            if self._live_rows(shard_id) + self._live_rows(neighbor) > target:
                continue
            left = min(shard_id, neighbor)
            if any(
                not self._live_global_codes(name, left)
                and not self._live_global_codes(name, left + 1)
                for name in self.columns
            ):
                continue  # a column would come out empty; unbuildable
            self.merge_shards(left)
            return True
        return False

    def rebalance(self, target_shard_rows: int | None = None) -> int:
        """Split and merge until every shard sits within the policy.

        Uses the constructor's ``target_shard_rows`` unless one is
        passed explicitly — which also lets a fixed ``num_shards``
        cluster be rebalanced by hand.  Returns the number of
        lifecycle operations performed.
        """
        # Lock only; the nested split/merge calls bump ``mutations``
        # themselves (the RLock makes the reentry safe), so a no-op
        # rebalance leaves the coalescing fence untouched.  One
        # journal record covers the whole reshape: the nested
        # lifecycle ops are its deterministic expansion.
        with self._serve_lock:
            with self._suppress_wal():
                ops = self._rebalance_impl(target_shard_rows)
            if ops:
                self._log(("rebalance", target_shard_rows))
            return ops

    def _rebalance_impl(self, target_shard_rows: int | None = None) -> int:
        target = (
            target_shard_rows
            if target_shard_rows is not None
            else self._target_shard_rows
        )
        if target is None:
            raise InvalidParameterError(
                "rebalance needs a target_shard_rows (constructor or "
                "argument)"
            )
        if target <= 0:
            raise InvalidParameterError("target_shard_rows must be >= 1")
        # A configured merge floor keeps governing under an explicit
        # target (clamped to it); otherwise the default ratio applies.
        floor = (
            self._min_shard_rows
            if self._min_shard_rows is not None
            else max(1, target // 4)
        )
        floor = min(floor, target)
        ops = 0
        # The policy terminates on its own: splits strictly shrink
        # shards, merges only produce shards at or under the target
        # (which never re-split), and each pass performs at least one
        # operation or stops.  The cap is a backstop against a policy
        # bug, sized from the data so a legitimate reshape (however
        # large) can never hit it.
        total = (
            max(self.total_rows(name) for name in self.columns)
            if self.columns
            else 0
        )
        limit = 4 * (self.num_shards + total // max(1, target) + 8)
        changed = True
        while changed:
            if ops >= limit:
                raise AssertionError(
                    f"rebalance failed to converge after {ops} operations "
                    "— sizing-policy bug"
                )
            changed = False
            split_at = self._pick_split(target)
            if split_at is not None:
                self.split_shard(split_at)
                ops += 1
                changed = True
                continue
            for shard_id in range(self.num_shards):
                if (
                    floor is not None
                    and self.num_shards > 1
                    and self._live_rows(shard_id) < floor
                    and self._try_merge(shard_id, target)
                ):
                    ops += 1
                    changed = True
                    break
        return ops

    def _pick_split(self, target: int) -> int | None:
        """The next shard to split, heat-aware.

        Candidates are the splittable shards over ``target``.  The
        fattest goes first — unless other candidates sit within
        ``heat_tolerance`` (relative) of its size, in which case the
        *hottest* of that tied group is preferred: equally oversized
        shards are not equally urgent, and splitting where the update
        traffic lands halves the shard most likely to breach again
        (the auto-split path needs no such choice — its trigger *is*
        the shard that just took an update).  Ties on heat fall back
        to the lowest position, keeping the policy deterministic.
        """
        candidates = []
        for shard_id in range(self.num_shards):
            rows = self._live_rows(shard_id)  # O(rows x cols): scan once
            if rows > target and self._splittable(shard_id):
                candidates.append((shard_id, rows))
        if not candidates:
            return None
        fattest = max(rows for _, rows in candidates)
        tied = [
            shard_id
            for shard_id, rows in candidates
            if rows >= (1.0 - self.heat_tolerance) * fattest
        ]
        return max(tied, key=lambda s: (self.shard_heat(s), -s))
