"""Pluggable execution of per-shard scatter tasks.

The scatter phase runs one independent task per shard.  How those
tasks execute is a deployment choice, not an algorithmic one, so the
cluster speaks one widened executor protocol with two dialects:

**Local executors** run arbitrary callables in the coordinating
process against the cluster's own shard engines:

* :class:`SerialExecutor` — one after another, inline.  The
  deterministic default; also what the stateful tests run under.
* :class:`ThreadedExecutor` — a persistent ``ThreadPoolExecutor``.
  Shard tasks touch disjoint per-shard engines and a lock-protected
  shared cache, so they are safe to interleave; with the disk latency
  model enabled (``Disk(latency_s=...)``) the per-transfer sleeps
  release the GIL and shard fetches genuinely overlap.

Both offer ``map(fn, items)`` (ordered, exception-propagating) and
``submit(fn, *args) -> future`` (the primitive the prefetching gather
pipelines on).  Every future answers ``result()``.

**Resident executors** host the shard state itself.
:class:`ProcessExecutor` keeps one *resident* ``QueryEngine`` per
shard inside a pool of worker processes: the cluster ships each
shard's build snapshot once (codes + the locally chosen backend, all
picklable), then keeps the replicas in sync by shipping routed
update/lifecycle *deltas* — never re-pickling engines per call — and
scatters queries as pipelined requests that return
``(positions, io Snapshot)`` so per-worker I/O counters aggregate
back into cluster totals.  Workers answer requests in FIFO order per
pipe, which is what makes the cheap pipelined future
(:class:`_PipeFuture`) correct.

Pipes carry control messages and replies only.  Bulk request
payloads — build snapshots of ``SHM_MIN_CODES`` or more codes and
coalesced delta batches of ``SHM_MIN_DELTAS`` or more entries —
travel as flat ``int64`` arrays through
:mod:`multiprocessing.shared_memory` segments, so shipping a shard or
a write burst costs a few hundred pipe bytes of names and counts
regardless of payload size.  (Position replies stay pickled lists on
the pipe deliberately: pickle encodes small ints in ~3 bytes where an
``int64`` blob spends 8, and measured pack+unpack time favors the
list too.)
The coordinator owns every segment: each is registered in a
per-executor table and released when its request resolves (success,
error, or worker death all fire the same ``on_resolve`` hook), with
``close()`` and a ``weakref.finalize`` GC backstop sweeping anything
abandoned mid-stream.  A worker that dies mid-request surfaces as
:class:`~repro.errors.WorkerDiedError` carrying the failing shard
uid on every outstanding future — never a hang on the pipe.

The ``kind`` attribute ("local" / "resident") tells the cluster which
dialect to speak; ``supports_prefetch`` tells the gather whether
submitting a fetch ahead of the drain actually buys overlap.
"""

from __future__ import annotations

import multiprocessing
import pickle
import weakref
from array import array
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Iterable, TypeVar

from ..errors import InvalidParameterError, StorageError, WorkerDiedError
from ..iomodel.stats import Snapshot

T = TypeVar("T")
R = TypeVar("R")


class CompletedFuture:
    """An already-resolved future (inline execution, cache hits)."""

    __slots__ = ("_value", "_exc")

    def __init__(self, value=None, exc: BaseException | None = None) -> None:
        self._value = value
        self._exc = exc

    def result(self):
        if self._exc is not None:
            raise self._exc
        return self._value


class MappedFuture:
    """A future post-processed by ``fn`` at resolution time.

    Used by the cluster to fold a worker's reply into the shared
    cache exactly when the gather consumes it.
    """

    __slots__ = ("_future", "_fn")

    def __init__(self, future, fn) -> None:
        self._future = future
        self._fn = fn

    def result(self):
        return self._fn(self._future.result())


class _SliceFuture:
    """One request's view of a grouped (multi-request) reply.

    A ``query_multi`` shipment resolves its single pipe future to a
    list of per-request replies; each slice future indexes into it,
    so callers see one future per request regardless of how requests
    were packed onto the wire.  A failed group re-raises the same
    exception from every slice.
    """

    __slots__ = ("_parent", "_index")

    def __init__(self, parent, index: int) -> None:
        self._parent = parent
        self._index = index

    def result(self):
        return self._parent.result()[self._index]


class SerialExecutor:
    """Run shard tasks inline, preserving order."""

    kind = "local"
    #: Inline submission materializes the result immediately, so
    #: fetching ahead buys nothing and would only widen the gather's
    #: memory bound.
    supports_prefetch = False

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]

    def submit(self, fn: Callable[..., R], *args) -> CompletedFuture:
        try:
            return CompletedFuture(fn(*args))
        except BaseException as exc:  # re-raised at result(), like a pool
            return CompletedFuture(exc=exc)

    def close(self) -> None:  # symmetric with the pooled executors
        pass


class ThreadedExecutor:
    """Run shard tasks on a persistent thread pool, preserving order."""

    kind = "local"
    supports_prefetch = True

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers <= 0:
            raise InvalidParameterError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        # list() propagates the first worker exception to the caller,
        # exactly like the serial path would.
        return list(self._pool.map(fn, items))

    def submit(self, fn: Callable[..., R], *args):
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# The process executor: worker-resident shard runtimes
# ----------------------------------------------------------------------


class _PipeFuture:
    """One outstanding request on a worker's pipe.

    Workers answer strictly in request order, so resolving a future
    means pumping replies off the pipe into the pending queue's heads
    until this one is reached.  ``result()`` re-raises any exception
    the worker shipped back.

    ``uid`` is the shard the request was addressed to (error
    attribution when the worker dies).  ``on_resolve`` fires exactly
    once when the future resolves — success, worker error, or worker
    death alike — which is what ties shared-memory segment lifetime to
    the request that shipped it: the pump path, the drain path, and
    the dead-worker path all go through :meth:`_resolve`.
    """

    __slots__ = ("_worker", "_done", "_value", "_exc", "uid", "on_resolve")

    def __init__(self, worker: "_Worker", uid: int | None = None) -> None:
        self._worker = worker
        self._done = False
        self._value = None
        self._exc: BaseException | None = None
        self.uid = uid
        self.on_resolve = None

    def _resolve(self, value, exc: BaseException | None) -> None:
        self._done = True
        self._value = value
        self._exc = exc
        if self.on_resolve is not None:
            callback, self.on_resolve = self.on_resolve, None
            callback()

    def result(self):
        if not self._done:
            self._worker.pump_until(self)
        if self._exc is not None:
            raise self._exc
        return self._value


class _Worker:
    """One worker process plus its request pipe and pending queue."""

    #: Cap on outstanding requests per pipe.  Requests are tiny, so a
    #: bounded pipeline can never fill the request pipe's OS buffer —
    #: which is what rules out the classic both-sides-blocked-in-send
    #: deadlock (the worker blocked sending a large reply while the
    #: coordinator keeps sending requests): past the cap the
    #: coordinator resolves the oldest reply first, draining the
    #: reply pipe before it sends again.
    MAX_PIPELINE = 64

    def __init__(self, ctx, index: int) -> None:
        # Import here so the parent module stays importable even if a
        # deployment strips the worker module.
        from .worker import shard_worker_main

        self.index = index
        self.dead = False
        #: Called once at the alive→dead transition (set by the owning
        #: executor) so deaths are countable in telemetry even when the
        #: pending queue was empty and no caller ever sees the error.
        self.on_death = None
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.pending: deque[_PipeFuture] = deque()
        self.uids: set[int] = set()
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(child_conn,),
            name=f"repro-shard-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    @staticmethod
    def _uid_of(message: tuple) -> int | None:
        # Every shard-addressed op carries its uid as the second
        # element; pool-wide ops ("stats", "close") do not.
        return message[1] if len(message) > 1 and isinstance(message[1], int) else None

    def _fail_all(self) -> None:
        """The pipe broke: fail every outstanding future, typed.

        Resolving (not abandoning) the pending queue matters twice
        over: callers get :class:`WorkerDiedError` with the shard uid
        they addressed instead of a hang, and each future's
        ``on_resolve`` still fires, releasing any shared-memory
        segment its request shipped.
        """
        first_death = not self.dead
        self.dead = True
        if first_death and self.on_death is not None:
            self.on_death(self)
        while self.pending:
            head = self.pending.popleft()
            head._resolve(None, WorkerDiedError(self.index, head.uid))

    def request(self, message: tuple) -> _PipeFuture:
        if self.dead:
            raise WorkerDiedError(self.index, self._uid_of(message))
        while len(self.pending) >= self.MAX_PIPELINE:
            self.pump_until(self.pending[0])  # keeps its value for result()
        try:
            self.conn.send(message)
        except (BrokenPipeError, EOFError, OSError):
            self._fail_all()
            raise WorkerDiedError(self.index, self._uid_of(message)) from None
        future = _PipeFuture(self, self._uid_of(message))
        self.pending.append(future)
        return future

    def call(self, message: tuple):
        return self.request(message).result()

    def send_silent(self, message: tuple) -> None:
        """Ship a no-reply op: one send, no future, no round-trip.

        Only for ops the worker loop explicitly answers with silence
        (``drop_caches_all``) — anything else would desynchronize the
        FIFO reply pipe.  Ordering still holds: the worker processes
        the silent op before any later request on the same pipe.
        """
        if self.dead:
            raise WorkerDiedError(self.index, self._uid_of(message))
        try:
            self.conn.send(message)
        except (BrokenPipeError, EOFError, OSError):
            self._fail_all()
            raise WorkerDiedError(self.index, self._uid_of(message)) from None

    def pump_until(self, future: _PipeFuture) -> None:
        while not future._done:
            if not self.pending:
                raise StorageError(
                    "worker reply pipe out of sync (future not pending)"
                )
            try:
                status, payload = self.conn.recv()
            except (EOFError, OSError):
                # Worker death mid-reply: every outstanding request —
                # this one included — resolves to a typed error.
                self._fail_all()
                return
            head = self.pending.popleft()
            if status == "ok":
                head._resolve(payload, None)
            else:
                head._resolve(None, payload)

    def drain(self) -> None:
        """Resolve every outstanding request, discarding results."""
        while self.pending:
            tail = self.pending[-1]
            try:
                tail.result()
            except BaseException:
                if not tail._done:
                    # Transport failure (dead worker, closed pipe):
                    # nothing further can resolve — stop, don't spin.
                    self.pending.clear()
                    return

    def shutdown(self, timeout: float) -> None:
        try:
            self.drain()
            self.conn.send(("close",))
            self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        finally:
            self.process.join(timeout=timeout)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.terminate()
                self.process.join(timeout=timeout)
            self.conn.close()


def _release_segments(segments: dict) -> None:
    """Close and unlink every segment in the registry (idempotent)."""
    for name in list(segments):
        shm = segments.pop(name, None)
        if shm is None:
            continue
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # already gone
            pass


def _segment_releaser(segments: dict, name: str):
    """One-shot release of a single named segment from the registry.

    Holds the registry dict, never the executor, so a leaked closure
    cannot keep the executor alive past its GC finalizer.
    """

    def release() -> None:
        shm = segments.pop(name, None)
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass

    return release


def _pack_delta_batch(buffer: list[tuple]) -> tuple[tuple, array]:
    """Flatten coalescable deltas to (names, int64 quads).

    Each delta packs to four signed 64-bit ints:
    ``(0, name_index, ch, 0)`` for ``append`` and
    ``(1, name_index, pos, ch)`` for ``change``.  Raises ``TypeError``
    / ``OverflowError`` on values ``array('q')`` cannot hold — the
    caller falls back to the pickled batch.
    """
    names: list[str] = []
    name_idx: dict[str, int] = {}
    packed = array("q")
    for delta in buffer:
        idx = name_idx.setdefault(delta[1], len(names))
        if idx == len(names):
            names.append(delta[1])
        if delta[0] == "append":
            packed.extend((0, idx, delta[2], 0))
        else:
            packed.extend((1, idx, delta[2], delta[3]))
    return tuple(names), packed


def _pack_codes_flat(columns: list) -> tuple[array, list]:
    """Flatten build-payload column codes to one int64 array + metas.

    ``None`` holes encode as ``-1``; the metas keep every column field
    except the codes themselves, with the code *count* in their
    place.  Raises ``TypeError``/``OverflowError`` on values
    ``array('q')`` cannot hold — the caller falls back to the pickled
    build.
    """
    codes = array("q")
    metas = []
    for (name, col_codes, sigma, dyn, sel, exact, delete, backend,
         *rest) in columns:
        codes.extend(-1 if c is None else c for c in col_codes)
        metas.append(
            (name, len(col_codes), sigma, dyn, sel, exact, delete, backend,
             *rest)
        )
    return codes, metas


def _default_start_method() -> str:
    # fork is cheap and inherits the imported registry; fall back to
    # spawn where fork is unavailable (the worker module is fully
    # importable, so spawn works too, just slower per worker).
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ProcessExecutor:
    """Worker processes hosting resident per-shard query engines.

    The cluster ships every shard's build *snapshot* (picklable codes
    plus the backend verdicts its own advisor already made) exactly
    once via :meth:`build_shard`, keeps the resident replica in sync
    with :meth:`apply_delta` as updates and lifecycle operations are
    routed, and scatters queries with :meth:`submit_query`, which
    pipelines on the worker's pipe and resolves to
    ``(positions, io Snapshot)``.  :meth:`submit_leaves` is the
    compiled-leaf fetch op: one pipelined message carrying every leaf
    interval a predicate plan needs from one shard's column, answered
    by a list of ``(positions, Snapshot)`` pairs — a wide IN-list
    costs one round-trip, not one per member.  Shards are assigned to
    the least loaded worker at build time and stay there — residency
    is the point: no engine state crosses a process boundary after
    the build.

    Routed update deltas are *batched*: consecutive same-shard
    ``append``/``change`` ops coalesce in a coordinator-side buffer
    and ship as one ``delta_batch`` pipe message, amortizing
    round-trips under write-heavy load.  Anything that must observe
    the updates — a query to that shard, a non-coalescable delta, a
    retire, :meth:`io_totals` — flushes the buffer *ahead of itself
    on the same FIFO pipe* (no blocking), so ordering is preserved
    exactly.  A worker-side failure of a batched delta surfaces at
    the next operation touching that worker (or at
    :meth:`flush_deltas`), not at the buffered call itself.

    One executor may serve several clusters concurrently because shard
    uids are process-unique.  ``close()`` (or the context manager)
    shuts the pool down; queries in flight are drained first.
    """

    kind = "resident"
    supports_prefetch = True

    #: Buffered coalescable deltas per shard auto-flush at this count
    #: (a bound on both message size and error-surfacing latency).
    DELTA_BATCH_MAX = 128
    #: The routed ops that may coalesce: pure single-position updates
    #: whose worker-side application order within one shard is all
    #: that matters.
    _COALESCABLE = ("append", "change")
    #: Build snapshots whose flattened code count reaches this ship
    #: their codes through a ``multiprocessing.shared_memory`` segment
    #: (one flat ``array('q')``, ``None`` holes as ``-1``) and send
    #: only name/offset metadata down the pipe; smaller builds are not
    #: worth a segment.
    SHM_MIN_CODES = 2048
    #: Coalesced delta batches at least this long ship flat through a
    #: segment instead of as a pickled list-of-tuples.
    SHM_MIN_DELTAS = 32

    def __init__(
        self,
        max_workers: int = 4,
        start_method: str | None = None,
        shutdown_timeout_s: float = 10.0,
        cache_store=None,
    ) -> None:
        if max_workers <= 0:
            raise InvalidParameterError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.shutdown_timeout_s = shutdown_timeout_s
        ctx = multiprocessing.get_context(
            start_method if start_method is not None else _default_start_method()
        )
        # Start the resource tracker *before* forking workers so they
        # inherit it: segment registrations then land in one shared
        # tracker, where the worker's attach-time register is an
        # idempotent set-add balanced by the coordinator's unlink.
        # (Spawned workers start their own tracker and balance their
        # attach registrations themselves — see worker._attach_segment.)
        resource_tracker.ensure_running()
        self._workers = [_Worker(ctx, i) for i in range(max_workers)]
        #: Worker processes that died with the pool open (pipe broke or
        #: EOF mid-reply).  Each death is counted exactly once at the
        #: alive→dead transition, and mirrored into the
        #: ``cluster.worker_deaths`` counter when :attr:`metrics` is
        #: attached — previously a death was only visible to whichever
        #: caller happened to hold the failing future.
        self.worker_deaths = 0
        for worker in self._workers:
            worker.on_death = self._note_worker_death
        self._by_uid: dict[int, _Worker] = {}
        self._pending_deltas: dict[int, list[tuple]] = {}
        self._batch_futures: list[_PipeFuture] = []
        self._closed = False
        #: Live shared-memory segments by name.  Each is released by
        #: the ``on_resolve`` of the request that shipped it; whatever
        #: remains is unlinked by :meth:`close`, with a GC finalizer
        #: as the last-resort backstop (the finalizer holds only the
        #: dict, never the executor).
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._segments_finalizer = weakref.finalize(
            self, _release_segments, self._segments
        )
        #: Pipe messages sent per query-side op ("query" / "leaves" /
        #: "fold") — the accounting the aggregate-pushdown tests and
        #: benchmarks read to prove which wire shape a path used.
        #: Counts accumulate from construction (or the last
        #: :meth:`reset_op_counts`) and are **never reset implicitly**;
        #: ``ClusterEngine.stats()`` reports them verbatim.
        self.op_counts: Counter[str] = Counter()
        #: Optional :class:`repro.obs.MetricsRegistry`: delta-batch
        #: flush sizes are observed into ``delta.flush_size`` when
        #: attached (``None`` costs one attribute check per flush).
        self.metrics = None
        self.cache_store = None
        if cache_store is not None:
            self.attach_cache_store(cache_store)

    def reset_op_counts(self) -> None:
        """Zero :attr:`op_counts` — the *only* way it ever resets.

        Tests and benchmarks that assert on per-query wire shapes call
        this between measurements instead of poking the counter
        directly.
        """
        self.op_counts.clear()

    def _note_worker_death(self, worker: _Worker) -> None:
        self.worker_deaths += 1
        if self.metrics is not None:
            self.metrics.inc("cluster.worker_deaths")

    # ------------------------------------------------------------------
    # Shard residency
    # ------------------------------------------------------------------

    def _worker_of(self, uid: int) -> _Worker:
        try:
            return self._by_uid[uid]
        except KeyError:
            raise InvalidParameterError(
                f"shard uid {uid} is not resident in this executor"
            ) from None

    def _new_segment(self, payload: bytes) -> shared_memory.SharedMemory:
        shm = shared_memory.SharedMemory(create=True, size=len(payload))
        shm.buf[: len(payload)] = payload
        self._segments[shm.name] = shm
        return shm

    def segment_count(self) -> int:
        """Live (not yet released) shared-memory segments — tests only."""
        return len(self._segments)

    def build_shard(self, uid: int, payload: tuple) -> None:
        """Ship one shard's build snapshot to the least loaded worker.

        Large snapshots (``SHM_MIN_CODES`` flattened codes or more) lay
        their codes flat in a shared-memory segment — one
        ``array('q')`` per build, ``None`` holes as ``-1`` — and the
        pipe carries only ``("build_shm", uid, segment, cache_size,
        latency_s, column metas)``.  The segment is released as soon
        as the worker's reply resolves, successful or not.
        """
        if self._closed:
            raise StorageError("executor is closed")
        if uid in self._by_uid:
            raise InvalidParameterError(f"shard uid {uid} already resident")
        worker = min(self._workers, key=lambda w: (len(w.uids), w.index))
        cache_size, latency_s, columns = payload
        total_codes = sum(len(column[1]) for column in columns)
        release = None
        message = ("build", uid, payload)
        if total_codes >= self.SHM_MIN_CODES:
            try:
                codes, metas = _pack_codes_flat(columns)
            except (TypeError, OverflowError):
                pass  # exotic codes: the pickled path still works
            else:
                shm = self._new_segment(codes.tobytes())
                release = _segment_releaser(self._segments, shm.name)
                message = (
                    "build_shm", uid, shm.name, cache_size, latency_s, metas,
                )
        try:
            future = worker.request(message)
        except BaseException:
            if release is not None:
                release()
            raise
        if release is not None:
            future.on_resolve = release
        future.result()
        worker.uids.add(uid)
        self._by_uid[uid] = worker

    def retire_shard(self, uid: int) -> None:
        """Drop a shard's resident engine (post split/merge/close)."""
        worker = self._worker_of(uid)
        self._flush_uid(uid)  # buffered updates apply before the retire
        del self._by_uid[uid]
        worker.uids.discard(uid)
        worker.call(("retire", uid))

    # ------------------------------------------------------------------
    # Durable persistence (repro.persist)
    # ------------------------------------------------------------------

    def snap_shard(self, uid: int, path: str) -> int:
        """Have a shard's worker write its snapshot file to ``path``.

        The worker holds the built indexes (the coordinator's own
        copies are deferred), so the snapshot is written where the
        state lives and only the filename crosses the pipe.  Buffered
        deltas flush first — the snapshot is the acknowledged state.
        """
        worker = self._worker_of(uid)
        self._flush_uid(uid)
        return worker.call(("snap", uid, path))

    def rehydrate_shard(
        self,
        uid: int,
        path: str,
        cache_size: int,
        latency_s: float,
        epochs: dict,
    ) -> None:
        """Adopt one restored shard from its snapshot file — no rebuild.

        The restore-time mirror of :meth:`build_shard`: the least
        loaded worker mmap-loads the snapshot (index pages fault in on
        demand) instead of receiving codes and reconstructing indexes.
        """
        if self._closed:
            raise StorageError("executor is closed")
        if uid in self._by_uid:
            raise InvalidParameterError(f"shard uid {uid} already resident")
        worker = min(self._workers, key=lambda w: (len(w.uids), w.index))
        worker.call(("rehydrate", uid, path, cache_size, latency_s, epochs))
        worker.uids.add(uid)
        self._by_uid[uid] = worker

    def attach_cache_store(self, store) -> None:
        """Broadcast a durable result store to every worker.

        ``store`` must be picklable (``repro.persist.FileCacheStore``
        is by construction); workers consult it before decoding index
        pages and feed it on every miss.  Workers started later do not
        exist — the pool is fixed at construction — so one broadcast
        covers the executor's lifetime.
        """
        for worker in self._workers:
            worker.call(("cache_store", store))
        self.cache_store = store

    # ------------------------------------------------------------------
    # Routed deltas (batched)
    # ------------------------------------------------------------------

    def apply_delta(self, uid: int, delta: tuple) -> None:
        """Apply (or buffer) one routed delta for a resident shard.

        ``append``/``change`` deltas coalesce per shard and ship later
        as one ``delta_batch`` message; every other delta first
        flushes that shard's buffer ahead of itself, then ships as its
        own pipelined message — per-shard order is exact (one FIFO
        pipe per worker), and nothing blocks on the reply, so a
        broadcast delta (``drop_caches``, ``set_latency``) costs one
        send per shard instead of one round-trip per shard.  Worker
        errors surface at the next harvest point: a later
        ``apply_delta``, :meth:`flush_deltas`, or a blocking call on
        the same shard.
        """
        worker = self._worker_of(uid)
        self._harvest_batches()
        if delta[0] in self._COALESCABLE:
            buffer = self._pending_deltas.setdefault(uid, [])
            buffer.append(delta)
            if len(buffer) >= self.DELTA_BATCH_MAX:
                self._flush_uid(uid)
            return
        self._flush_uid(uid)
        self._batch_futures.append(worker.request(("delta", uid, delta)))

    def pending_delta_count(self, uid: int) -> int:
        """Buffered (not yet shipped) coalescable deltas for one shard."""
        return len(self._pending_deltas.get(uid, ()))

    def _flush_uid(self, uid: int) -> None:
        """Ship a shard's buffered deltas as one pipelined message.

        Batches of ``SHM_MIN_DELTAS`` or more flatten into a
        shared-memory segment (released when the shipment's reply
        resolves — including via the drain path and the dead-worker
        path); shorter batches stay pickled on the pipe.
        """
        buffer = self._pending_deltas.pop(uid, None)
        if not buffer:
            return
        if self.metrics is not None:
            self.metrics.observe("delta.flush_size", len(buffer))
        worker = self._by_uid[uid]
        release = None
        if len(buffer) == 1:
            message = ("delta", uid, buffer[0])
        else:
            message = ("delta_batch", uid, buffer)
            if len(buffer) >= self.SHM_MIN_DELTAS:
                try:
                    names, packed = _pack_delta_batch(buffer)
                except (TypeError, OverflowError):
                    pass  # non-int64 payloads: pickled batch fallback
                else:
                    shm = self._new_segment(packed.tobytes())
                    release = _segment_releaser(self._segments, shm.name)
                    message = (
                        "delta_batch_shm", uid, shm.name, len(buffer), names,
                    )
        try:
            future = worker.request(message)
        except BaseException:
            if release is not None:
                release()
            raise
        if release is not None:
            future.on_resolve = release
        self._batch_futures.append(future)

    def _harvest_batches(self, block: bool = False) -> None:
        """Surface errors from already-answered batch shipments.

        With ``block=True`` every outstanding shipment is resolved
        (waiting for replies); otherwise only those the pipe pump has
        already answered are checked — no extra round-trips.
        """
        pending = self._batch_futures
        i = 0
        while i < len(pending):
            future = pending[i]
            if block or future._done:
                pending.pop(i)
                future.result()
            else:
                i += 1

    def flush_deltas(self) -> None:
        """Ship and confirm every buffered delta (blocking)."""
        for uid in list(self._pending_deltas):
            self._flush_uid(uid)
        self._harvest_batches(block=True)

    def drop_caches_all(self) -> None:
        """Flush every resident engine's caches: one message per worker.

        Buffered deltas flush first (per-shard order), then each
        *worker* gets a single fire-and-forget ``drop_caches_all`` —
        a cluster-wide cache drop costs ``max_workers`` sends (no
        replies, no round-trips), not one round-trip per shard.  The
        FIFO pipe still orders the drop ahead of any later query.
        """
        for uid in list(self._pending_deltas):
            self._flush_uid(uid)
        self._harvest_batches()
        for worker in self._workers:
            if worker.uids:
                worker.send_silent(("drop_caches_all",))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def submit_query(
        self,
        uid: int,
        name: str,
        char_lo: int,
        char_hi: int,
        trace: str | None = None,
    ) -> _PipeFuture:
        """Pipeline one range query; resolves to (positions, Snapshot).

        Any buffered deltas for the shard are flushed ahead of the
        query on the same FIFO pipe, so the reply reflects them.
        ``trace`` is an optional trace id: when set, the worker times
        its shard-local execution and the reply widens to
        ``(positions, Snapshot, [span dict])`` so the coordinator can
        stitch the worker-side span into the query's trace.
        """
        worker = self._worker_of(uid)
        self._flush_uid(uid)
        self.op_counts["query"] += 1
        message = ("query", uid, name, char_lo, char_hi)
        if trace is not None:
            message += (trace,)
        return worker.request(message)

    def submit_query_group(
        self,
        requests: "list[tuple[int, str, int, int]]",
        trace: str | None = None,
    ) -> list:
        """Pipeline many shard range queries, one message per *worker*.

        ``requests`` is ``[(uid, name, char_lo, char_hi), ...]``; the
        return value is a list of futures aligned with it, each
        resolving to the same shape :meth:`submit_query` produces.
        Requests for shards resident in the same worker ride a single
        ``query_multi`` pipe message (answered as a list, fanned back
        out through per-request views), so a 16-shard scatter over 4
        workers costs 4 round-trips instead of 16.  A worker error
        fails every request in its group — the scatter's first-error
        drain treats that exactly like a lone failed shard.
        """
        groups: dict[int, list[int]] = {}
        for i, (uid, *_rest) in enumerate(requests):
            worker = self._worker_of(uid)
            self._flush_uid(uid)
            groups.setdefault(worker.index, []).append(i)
        futures: list = [None] * len(requests)
        for index, slots in groups.items():
            worker = self._workers[index]
            if len(slots) == 1:
                i = slots[0]
                uid, name, lo, hi = requests[i]
                self.op_counts["query"] += 1
                message = ("query", uid, name, lo, hi)
                if trace is not None:
                    message += (trace,)
                futures[i] = worker.request(message)
                continue
            batch = [requests[i] for i in slots]
            self.op_counts["query"] += 1
            message = ("query_multi", batch[0][0], batch)
            if trace is not None:
                message += (trace,)
            parent = worker.request(message)
            for pos, i in enumerate(slots):
                futures[i] = _SliceFuture(parent, pos)
        return futures

    def submit_leaves(
        self,
        uid: int,
        name: str,
        intervals: list[tuple[int, int]],
        trace: str | None = None,
    ) -> _PipeFuture:
        """Pipeline one compiled-leaf fetch: many intervals, one message.

        Resolves to a list of ``(positions, Snapshot)`` pairs, one per
        interval in order — the worker half of a predicate plan's
        batched scatter.  With a ``trace`` id the reply widens to
        ``(pairs, [span dicts])``, one span per interval.
        """
        worker = self._worker_of(uid)
        self._flush_uid(uid)
        self.op_counts["leaves"] += 1
        message = ("leaves", uid, name, list(intervals))
        if trace is not None:
            message += (trace,)
        return worker.request(message)

    def submit_fold(
        self, uid: int, payload: tuple, trace: str | None = None
    ) -> _PipeFuture:
        """Pipeline one aggregate fold: a shard-local plan, one number.

        Resolves to ``(value, Snapshot)`` where ``value`` is the
        shard's count, existence bit, or ``{group code: count}`` dict
        — the pushdown op that keeps RID lists off the pipe entirely.
        With a ``trace`` id the reply widens to
        ``(value, Snapshot, [span dict])``.
        """
        worker = self._worker_of(uid)
        self._flush_uid(uid)
        self.op_counts["fold"] += 1
        message = ("fold", uid, payload)
        if trace is not None:
            message += (trace,)
        return worker.request(message)

    def query_shard(
        self, uid: int, name: str, char_lo: int, char_hi: int
    ) -> tuple[list[int], Snapshot]:
        return self.submit_query(uid, name, char_lo, char_hi).result()

    def io_totals(self) -> Snapshot:
        """Aggregate every worker's resident-engine I/O counters."""
        for uid in list(self._pending_deltas):
            self._flush_uid(uid)  # totals must reflect buffered updates
        futures = [w.request(("stats",)) for w in self._workers]
        total = Snapshot()
        for future in futures:
            total = total + future.result()
        self._harvest_batches()
        return total

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.flush_deltas()
        except Exception:  # shutdown is best-effort past this point
            pass
        for worker in self._workers:
            worker.shutdown(self.shutdown_timeout_s)
        self._by_uid.clear()
        self._pending_deltas.clear()
        self._batch_futures.clear()
        # Shutdown drained every pipe, so per-request releases have
        # already fired; whatever segments remain (abandoned streams,
        # dead workers killed before replying) are unlinked here.
        _release_segments(self._segments)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def ship_exception(exc: BaseException) -> BaseException:
    """The exception to send over a worker pipe (picklable or proxied)."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return StorageError(f"{type(exc).__name__}: {exc}")
