"""Pluggable execution of per-shard scatter tasks.

The scatter phase runs one independent task per shard.  How those
tasks execute is a deployment choice, not an algorithmic one, so the
cluster takes any object with an ordered ``map(fn, items)``:

* :class:`SerialExecutor` — one after another, in-process.  The
  deterministic default; also what the stateful tests run under.
* :class:`ThreadedExecutor` — a persistent ``ThreadPoolExecutor``.
  Shard tasks touch disjoint per-shard engines and a lock-protected
  shared cache, so they are safe to interleave; with the simulated
  block device doing pure in-process work the GIL bounds the speedup,
  but against any backend that releases the GIL (real I/O, a network
  cache) the same code path overlaps shard latencies.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

from ..errors import InvalidParameterError

T = TypeVar("T")
R = TypeVar("R")


class SerialExecutor:
    """Run shard tasks inline, preserving order."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]

    def close(self) -> None:  # symmetric with ThreadedExecutor
        pass


class ThreadedExecutor:
    """Run shard tasks on a persistent thread pool, preserving order."""

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers <= 0:
            raise InvalidParameterError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        # list() propagates the first worker exception to the caller,
        # exactly like the serial path would.
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
