"""Sharded multi-attribute tables: ``Table`` semantics, cluster serving.

:class:`ShardedTable` presents the same value-space interface as
:class:`repro.queries.table.Table` — named columns over arbitrary
ordered values, conjunctive ``select`` over ``(lo, hi)`` value ranges,
``row()`` for the associated data — but builds and serves through a
:class:`~repro.cluster.engine.ClusterEngine`, so each column is split
into RID-range shards with per-shard advisor decisions, scatter-gather
execution, and the shared versioned result cache.

The alphabet stays *global* per column (one dictionary for the whole
table, as §1.1 prescribes), so every shard agrees on code space and
value-range translation happens exactly once per query.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..errors import InvalidParameterError, QueryError, UpdateError
from ..model.alphabet import Alphabet
from ..query import (
    PlanReport,
    Pred,
    mapping_to_pred,
    translate,
    warn_mapping_adapter,
)
from .engine import ClusterEngine


class ShardedColumn:
    """One attribute: values, their global alphabet, sharded indexes."""

    def __init__(
        self,
        name: str,
        values: Sequence[Any],
        cluster: ClusterEngine,
        backend: str | None = None,
        dynamism: str = "static",
    ) -> None:
        if not values:
            raise InvalidParameterError(f"column {name!r} is empty")
        self.name = name
        self.values = list(values)
        self.alphabet = Alphabet(values)
        cluster.add_column(
            name,
            self.alphabet.encode(values),
            self.alphabet.sigma,
            dynamism=dynamism,
            backend=backend,
        )

    def code_range(self, lo: Any, hi: Any) -> tuple[int, int] | None:
        return self.alphabet.code_range(lo, hi)


class ShardedTable:
    """Columns of equal length served scatter-gather by a cluster.

    ``backend`` pins every column (a string) or individual columns (a
    mapping) to a registry backend, bypassing the per-shard advisor —
    the hook the differential conformance suite drives every registered
    backend through.  Row ids are global: shard-local answers come back
    offset-translated, so ``select`` results are directly comparable to
    a single-engine :class:`~repro.queries.table.Table` over the same
    data.

    Updates go through the table's own verbs (:meth:`append_row`,
    :meth:`change`), which keep the value mirror — ``values``,
    ``num_rows``, what :meth:`row` serves — in sync with the cluster.
    Auto shard lifecycle composes with those verbs: build with
    ``target_shard_rows`` and appends that outgrow a shard split it in
    place without disturbing global row ids (table-level flows leave
    no deletion holes, so lifecycle compaction never renumbers).
    Mutating ``self.cluster`` directly updates the indexes only and
    leaves that mirror behind; deletions are engine-level for the same
    reason (a shard compaction renumbers global RIDs underneath a flat
    values list), so drive them through :class:`ClusterEngine` when
    ``row()`` fidelity is not needed.
    """

    def __init__(
        self,
        columns: Mapping[str, Sequence[Any]],
        num_shards: int | None = None,
        target_shard_rows: int | None = None,
        cluster: ClusterEngine | None = None,
        backend: str | Mapping[str, str] | None = None,
        dynamism: str = "static",
        cost_model=None,
        **cluster_kwargs,
    ) -> None:
        if not columns:
            raise InvalidParameterError("a table needs at least one column")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise InvalidParameterError("columns must have equal length")
        self.num_rows = lengths.pop()
        if cluster is None:
            # cost_model feeds the per-shard advisor — the calibration
            # feedback path (CostModel.load_calibrated) at cluster
            # scale.
            cluster = ClusterEngine(
                num_shards=num_shards,
                target_shard_rows=target_shard_rows,
                cost_model=cost_model,
                **cluster_kwargs,
            )
        elif num_shards is not None or target_shard_rows is not None:
            raise InvalidParameterError(
                "shard sizing belongs to the cluster; pass either a "
                "cluster or sizing knobs, not both"
            )
        elif cost_model is not None:
            raise InvalidParameterError(
                "the cost model belongs to the cluster; pass either a "
                "cluster or a cost_model, not both"
            )
        self.cluster = cluster
        self.columns: dict[str, ShardedColumn] = {}
        for name, values in columns.items():
            pin = backend.get(name) if isinstance(backend, Mapping) else backend
            self.columns[name] = ShardedColumn(
                name, values, cluster, backend=pin, dynamism=dynamism
            )

    def column(self, name: str) -> ShardedColumn:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(f"unknown column {name!r}") from None

    def row(self, rid: int) -> dict[str, Any]:
        """Fetch one row's attribute values (the "associated data")."""
        if rid < 0 or rid >= self.num_rows:
            raise QueryError(f"row id {rid} outside [0, {self.num_rows})")
        return {name: col.values[rid] for name, col in self.columns.items()}

    def stats(self):
        """Row count + the cluster's typed, JSON-serializable snapshot.

        The ``cluster`` slot is the full
        :class:`~repro.cluster.engine.ClusterStats` — scatter I/O,
        gather accounting, executor op counts, per-shard rows/heat/
        backends, shared-cache counters (see
        :meth:`ClusterEngine.stats`).
        """
        from ..obs import TableStats

        return TableStats(
            num_rows=self.num_rows, cluster=self.cluster.stats()
        )

    def append_row(self, row: Mapping[str, Any]) -> int:
        """Append one row (a value per column); returns its global RID.

        Every column must be present so the RID spaces stay aligned,
        and every value must already occur in its column's alphabet
        (the dictionary is fixed at build time, §1.1).  Requires the
        table to have been built with an update-capable ``dynamism``.
        """
        if set(row) != set(self.columns):
            raise InvalidParameterError(
                f"append_row needs a value for exactly the columns "
                f"{sorted(self.columns)}, got {sorted(row)}"
            )
        codes = {
            name: self.columns[name].alphabet.code(value)
            for name, value in row.items()
        }  # validates every value before any column mutates
        frozen = [
            name
            for name in codes
            if self.cluster.columns[name].dynamism == "static"
        ]
        if frozen:
            raise UpdateError(
                f"columns {frozen} are static; build the table with an "
                "update-capable dynamism to append rows"
            )
        for name, code in codes.items():
            self.cluster.append(name, code)
            self.columns[name].values.append(row[name])
        self.num_rows += 1
        return self.num_rows - 1

    def change(self, name: str, rid: int, value: Any) -> None:
        """Change one attribute of one row, in value space."""
        column = self.column(name)
        if rid < 0 or rid >= self.num_rows:
            raise QueryError(f"row id {rid} outside [0, {self.num_rows})")
        self.cluster.change(name, rid, column.alphabet.code(value))
        column.values[rid] = value

    def _translate(self, pred: Pred) -> Pred:
        """A value-space predicate in code space (§1.1's dictionary).

        Translation happens exactly once per query, through each
        column's *global* alphabet, so every shard agrees on the code
        intervals the plan reads.
        """

        def alphabet_of(name: str) -> Alphabet:
            return self.column(name).alphabet

        return translate(pred, alphabet_of)

    def select(
        self, conditions: "Pred | Mapping[str, tuple[Any, Any]]"
    ) -> list[int]:
        """Global row ids matching a predicate over column *values*.

        Any ``Range``/``Eq``/``In``/``And``/``Or``/``Not`` tree from
        :mod:`repro.query` — bounds and members are values, either
        range bound may be open.  The legacy ``{column: (lo, hi)}``
        conjunction mapping still works as a deprecated adapter.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("ShardedTable.select")
            conditions = mapping_to_pred(conditions)
        return self.cluster.select(self._translate(conditions))

    def select_iter(
        self, conditions: "Pred | Mapping[str, tuple[Any, Any]]"
    ):
        """Streaming :meth:`select`: matching row ids, one at a time.

        Same answers in the same order, but produced by the cluster's
        streaming gather pipeline — per-leaf, per-shard iterators
        merge-intersected / merge-unioned in lockstep — so arbitrarily
        large answers are consumed in bounded memory.  Predicates are
        validated and value-translated eagerly, before the first row
        id is drawn.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("ShardedTable.select_iter")
            conditions = mapping_to_pred(conditions)
        return self.cluster.select_iter(self._translate(conditions))

    # ------------------------------------------------------------------
    # Aggregates (value space, pushed down to the shards)
    # ------------------------------------------------------------------

    def count(
        self, conditions: "Pred | Mapping[str, tuple[Any, Any]]"
    ) -> int:
        """How many rows match — each shard reports one integer.

        The predicate is translated once through the global alphabets
        and pushed down whole: shards fold it in cardinality space
        (worker-resident under a process executor) and only counts
        come back; no global row-id list exists at any point.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("ShardedTable.count")
            conditions = mapping_to_pred(conditions)
        return self.cluster.count(self._translate(conditions))

    def exists(
        self, conditions: "Pred | Mapping[str, tuple[Any, Any]]"
    ) -> bool:
        """Does any row match?  Shards are probed until first evidence."""
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("ShardedTable.exists")
            conditions = mapping_to_pred(conditions)
        return self.cluster.exists(self._translate(conditions))

    def count_by(
        self, group: str, conditions: "Pred | None" = None
    ) -> dict[Any, int]:
        """Matching-row counts keyed by the *values* of ``group``.

        Shards ship per-local-code counts; the cluster re-keys them
        into global codes, and the table decodes those through the
        group column's alphabet.  Zero-count groups are omitted;
        ``conditions=None`` counts every row by group.
        """
        alphabet = self.column(group).alphabet
        if conditions is None:
            code_counts = self.cluster.count_by(group)
        else:
            if not isinstance(conditions, Pred):
                raise QueryError("count_by takes a predicate or None")
            code_counts = self.cluster.count_by(
                group, self._translate(conditions)
            )
        return {
            alphabet.value(code): n for code, n in code_counts.items()
        }

    def topk(
        self, group: str, conditions: "Pred | None" = None, k: int = 10
    ) -> list[tuple[Any, int]]:
        """The ``k`` most frequent group *values* among matching rows.

        Count-descending; ties break by the group values' own order
        (their global alphabet codes), deterministically.
        """
        if k <= 0:
            raise InvalidParameterError("topk requires k >= 1")
        alphabet = self.column(group).alphabet
        counts = self.count_by(group, conditions)
        return sorted(
            counts.items(),
            key=lambda kv: (-kv[1], alphabet.code(kv[0])),
        )[:k]

    def plan(self, conditions: Pred) -> PlanReport:
        """The typed plan report for a value-space predicate."""
        if not isinstance(conditions, Pred):
            raise QueryError("plan takes a predicate; use repro.query")
        return self.cluster.plan(self._translate(conditions))

    def explain(
        self,
        target: "str | Pred | Mapping[str, tuple[Any, Any]] | None" = None,
    ) -> "str | PlanReport":
        """Cluster report: everything, one column, or one query.

        * ``explain()`` — the cluster overview (string);
        * ``explain("col")`` — one column's per-shard verdicts
          (string);
        * ``explain(pred)`` — the typed, JSON-serializable
          :class:`~repro.query.PlanReport` of a value-space predicate:
          the operator tree with every unique leaf's per-shard
          backend verdict, predicted bits, shared-cache state and
          pruning.  A ``{col: (lo, hi)}`` mapping is accepted as the
          conjunction it abbreviates and answers with the same report.
        """
        if target is None:
            return self.cluster.explain()
        if isinstance(target, str):
            self.column(target)  # raise on unknown, like select does
            return self.cluster.explain(target)
        if not isinstance(target, Pred):
            if not target:
                raise QueryError("explain requires at least one condition")
            target = mapping_to_pred(target)
        return self.cluster.explain(self._translate(target))

    # ------------------------------------------------------------------
    # Durability (delegates to repro.persist with the table's extras)
    # ------------------------------------------------------------------

    def persist_extra(self) -> dict:
        """The table-level manifest payload a checkpoint must carry.

        The cluster checkpoint stores codes; the value dictionaries
        (§1.1) live only here.  Storing each alphabet's occurring
        values — JSON-serializable by requirement — is complete for
        all time: the dictionary is fixed at build, so WAL records
        written after the checkpoint never extend it.  Suitable as a
        :class:`~repro.persist.Checkpointer` ``extra_fn`` directly.
        """
        return {
            "table": {
                "format": 1,
                "order": list(self.columns),
                "alphabets": {
                    name: column.alphabet.values()
                    for name, column in self.columns.items()
                },
            }
        }

    def init_persistence(self, directory: str, **kwargs):
        """Baseline checkpoint + attached WAL, with the table extras."""
        from ..persist import init_persistence

        extra = dict(kwargs.pop("extra", None) or {})
        extra.update(self.persist_extra())
        return init_persistence(
            self.cluster, directory, extra=extra, **kwargs
        )

    def checkpoint(self, directory: str, **kwargs):
        """Checkpoint the cluster, embedding the value dictionaries."""
        extra = dict(kwargs.pop("extra", None) or {})
        extra.update(self.persist_extra())
        return self.cluster.checkpoint(directory, extra=extra, **kwargs)

    @classmethod
    def restore(cls, directory: str, **kwargs) -> "ShardedTable":
        """Cold-start a table: cluster restore + value-mirror rebuild.

        The cluster side (:func:`repro.persist.restore_cluster`, whose
        knobs ``kwargs`` forwards) restores shards and replays the WAL
        tail; the value mirror is then *derived*, not stored — each
        column's live global codes are read back in RID order and
        decoded through the manifest's alphabet, so the mirror is
        exact even for rows that only exist in the log.  Restoring a
        table whose cluster saw engine-level deletions compacts the
        holes, the same fidelity caveat :meth:`row` already carries.
        """
        from ..errors import PersistenceError
        from ..persist import current_manifest

        cluster = ClusterEngine.restore(directory, **kwargs)
        try:
            manifest = current_manifest(directory)
            info = (manifest.get("extra") or {}).get("table")
            if info is None:
                raise PersistenceError(
                    f"checkpoint in {directory!r} was not written by a "
                    "ShardedTable (no table extras in its manifest)"
                )
            table = cls.__new__(cls)
            table.cluster = cluster
            table.columns = {}
            table.num_rows = 0
            for name in info["order"]:
                codes: list[int] = []
                for shard_id in range(cluster.num_shards):
                    codes.extend(
                        cluster._live_global_codes(name, shard_id)
                    )
                column = ShardedColumn.__new__(ShardedColumn)
                column.name = name
                column.alphabet = Alphabet(info["alphabets"][name])
                column.values = column.alphabet.decode(codes)
                table.columns[name] = column
                table.num_rows = len(codes)
            return table
        except BaseException:
            cluster.close()
            raise
