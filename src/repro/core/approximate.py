"""Approximate range queries in the spirit of Bloom filters (§3, Theorem 3).

On top of the Theorem-2 structure, every materialized node that stores a
position set ``S`` additionally stores ``k = floor(lg lg n)`` *hashed
sets* ``h_1(S), ..., h_k(S)``, where ``h_j`` maps positions into
``[2^(2^j)]`` through the XOR-fold family (the same ``k`` functions are
shared by every node).  A query first obtains ``z`` from the prefix
array, picks the smallest ``j`` with ``2^(2^j) > z / eps``, and unions
the ``j``-th hashed sets of the canonical nodes instead of the position
sets — reading only ``O(z lg(1/eps))`` bits.  The (large) approximate
answer is never materialized: it is the *preimage* of the hashed union,
which the XOR-fold family can enumerate, membership-test, and intersect
without further I/O.

When ``j`` would exceed ``k`` (i.e. ``z/eps`` approaches ``n``) the
query falls back to the exact algorithm, exactly as the paper
prescribes ("If j > k we cannot save anything").
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Sequence

from ..bits.bitio import BitWriter
from ..bits.ebitmap import decode_gaps, encode_gaps
from ..bits.ops import union_sorted
from ..errors import QueryError
from ..hashing.xorfold import XorFoldHash
from ..iomodel.disk import Disk
from ..trees.weighted import WNode
from .interface import RangeResult
from .static_index import Materialization, PaghRaoIndex


class ApproximateResult:
    """The answer to an approximate range query.

    Holds the hashed union; supports O(1) membership filtering and
    lazy candidate enumeration via the hash preimage (§3: "we do not
    want to output the preimage ... but only to generate it").
    """

    __slots__ = ("hash_fn", "hashed", "universe", "exact_cardinality", "level_j")

    def __init__(
        self,
        hash_fn: XorFoldHash,
        hashed: frozenset[int],
        universe: int,
        exact_cardinality: int,
        level_j: int,
    ) -> None:
        self.hash_fn = hash_fn
        self.hashed = hashed
        self.universe = universe
        self.exact_cardinality = exact_cardinality
        self.level_j = level_j

    @property
    def is_exact(self) -> bool:
        return False

    def might_contain(self, position: int) -> bool:
        """True for every true match; false positives with prob <= eps."""
        if position < 0 or position >= self.universe:
            return False
        return self.hash_fn(position) in self.hashed

    def __contains__(self, position: int) -> bool:
        return self.might_contain(position)

    def positions(self) -> list[int]:
        """Materialize the full candidate set (preimage of the union)."""
        return list(self.iter_candidates())

    def iter_candidates(self) -> Iterator[int]:
        """Candidates in increasing order, generated without I/O."""
        return self.hash_fn.preimage(set(self.hashed), self.universe)

    @property
    def candidate_bound(self) -> int:
        """Upper bound on the candidate count."""
        return self.hash_fn.preimage_size(len(self.hashed), self.universe)

    @property
    def compressed_size_bits(self) -> int:
        """Bits of the hashed-set representation (what was read)."""
        hashed = sorted(self.hashed)
        if not hashed:
            return 0
        from ..bits.ebitmap import encoded_length

        return encoded_length(hashed)

    def intersect(self, *others: "ApproximateResult") -> list[int]:
        """Candidates surviving every filter (the RID-intersection use).

        Enumerates this result's preimage and keeps positions that all
        other approximate results might contain — a position inside the
        range in only ``k`` of ``d`` dimensions survives with
        probability at most ``eps^(d-k)`` (§1.1).
        """
        out = []
        for p in self.iter_candidates():
            if all(o.might_contain(p) for o in others):
                out.append(p)
        return out


class ApproximatePaghRaoIndex(PaghRaoIndex):
    """Theorem 3: the Theorem-2 index plus per-node hashed sets."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        branching: int = 8,
        materialization: Materialization = "exponential",
        block_bits: int = 1024,
        mem_blocks: int = 64,
        seed: int = 0,
    ) -> None:
        self._seed = seed
        super().__init__(
            x,
            sigma,
            disk=disk,
            branching=branching,
            materialization=materialization,
            block_bits=block_bits,
            mem_blocks=mem_blocks,
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _store_bitmaps(self) -> None:
        # k = floor(lg lg n) hash levels, at least 1 (§3).
        n = max(self._n, 4)
        self._k = max(1, int(math.floor(math.log2(max(1.0, math.log2(n))))))
        rng = random.Random(self._seed)
        # hash level j in 1..k maps into [2^(2^j)].
        self._hashes: dict[int, XorFoldHash] = {
            j: XorFoldHash.sample(rng, 1 << j) for j in range(1, self._k + 1)
        }
        # node_id -> per-j (absolute offset, bit length, hashed count)
        self._hashed_extent: dict[int, dict[int, tuple[int, int, int]]] = {}
        self._hashed_payload_bits = 0
        super()._store_bitmaps()

    def _store_level(self, nodes: list[WNode]) -> None:
        super()._store_level(nodes)
        # Group the hashed sets by hash function, concatenated per level
        # (§3: "we group the sets according to what hash function was
        # used"), so a query's per-level reads stay contiguous.
        for j, h in self._hashes.items():
            writer = BitWriter()
            starts: list[tuple[WNode, int, int, int]] = []
            for node in nodes:
                start = writer.bit_length
                hashed = sorted({h(p) for p in self._tree.node_positions(node)})
                encode_gaps(writer, hashed)
                starts.append(
                    (node, start, writer.bit_length - start, len(hashed))
                )
            extent = self._disk.store(writer.getvalue(), writer.bit_length)
            for node, start, nbits, cnt in starts:
                self._hashed_extent.setdefault(node.node_id, {})[j] = (
                    extent.offset + start,
                    nbits,
                    cnt,
                )
            self._hashed_payload_bits += writer.bit_length

    def space(self):
        base = super().space()
        from .interface import SpaceBreakdown

        return SpaceBreakdown(
            payload_bits=base.payload_bits + self._hashed_payload_bits,
            directory_bits=base.directory_bits,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of hash levels, ``floor(lg lg n)``."""
        return self._k

    def choose_level(self, z: int, eps: float) -> int | None:
        """Smallest ``j`` with ``2^(2^j) > z / eps``; None -> exact."""
        if z == 0:
            return None
        threshold = z / eps
        for j in range(1, self._k + 1):
            if (1 << (1 << j)) > threshold:
                # No savings if the hash range already covers [n].
                if (1 << (1 << j)) >= self._n:
                    return None
                return j
        return None

    def approx_range_query(
        self, char_lo: int, char_hi: int, eps: float
    ) -> ApproximateResult | RangeResult:
        """Answer with false-positive probability at most ``eps``.

        Falls back to the exact query (returning a
        :class:`RangeResult`) when hashing cannot save I/O.
        """
        if not 0.0 < eps < 1.0:
            raise QueryError("eps must be in (0, 1)")
        self._check_range(char_lo, char_hi)
        z = self._prefix.range_count(char_lo, char_hi)
        if z == 0:
            return RangeResult.empty(self._n)
        j = self.choose_level(z, eps)
        if j is None:
            return self.range_query(char_lo, char_hi)
        read_nodes, directory_nodes, _ = self._collect_read_set(char_lo, char_hi)
        self._layout.touch_nodes(directory_nodes)
        hashed_lists = self._read_hashed(read_nodes, j)
        hashed = frozenset(union_sorted(hashed_lists))
        return ApproximateResult(
            hash_fn=self._hashes[j],
            hashed=hashed,
            universe=self._n,
            exact_cardinality=z,
            level_j=j,
        )

    def _read_hashed(self, read_nodes: list[WNode], j: int) -> list[list[int]]:
        """Read hashed sets (coalescing adjacent extents, as for bitmaps)."""
        entries = sorted(
            (self._hashed_extent[v.node_id][j] for v in read_nodes),
            key=lambda e: e[0],
        )
        lists: list[list[int]] = []
        i = 0
        while i < len(entries):
            run_start = entries[i][0]
            run_end = entries[i][0] + entries[i][1]
            k = i + 1
            while k < len(entries) and entries[k][0] == run_end:
                run_end += entries[k][1]
                k += 1
            reader = self._disk.reader(run_start, run_end - run_start)
            for t in range(i, k):
                _, _, cnt = entries[t]
                if cnt:
                    lists.append(decode_gaps(reader, cnt))
            i = k
        return lists
