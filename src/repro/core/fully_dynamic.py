"""The fully dynamic secondary index of §4.3 (Theorem 7).

The observation of §4.3: all the bitmaps stored at one materialized
level of the Theorem-2 structure form a bitmap index over an alphabet
with "one character per node of that level".  Representing each
materialized level as a buffered bitmap index (Theorem 6) therefore
yields a fully dynamic secondary index:

* ``change(x, i, alpha)`` updates each of the ``O(lg lg n)``
  materialized levels with one delete (the node that used to contain
  position ``i``) and one insert (the node that now does) — amortized
  ``O(lg n lg lg n / b)`` I/Os;
* ``append(x, alpha)`` inserts into each level;
* an alphabet range query decomposes into O(1) point queries per
  materialized level — ``O(z lg(n/z)/B + lg n lg lg n)`` I/Os.

Realization notes (DESIGN.md):

* the skeleton tree is built with ``split_heavy=False`` so every
  character owns exactly one leaf, making "the node containing position
  i at level l" a pure function of the character — no per-position
  lookup is needed to route a change;
* the current string is kept on disk as a fixed-width array; ``change``
  reads the old character from it (O(1) I/Os) exactly as a database
  would consult the row;
* weight balance is restored by a global rebuild after ``Theta(n)``
  updates (the doubling policy used by every dynamic variant here).
"""

from __future__ import annotations

from typing import Sequence

from ..bits.ops import union_sorted
from ..errors import InvalidParameterError, UpdateError
from ..iomodel.disk import Disk
from ..iomodel.stats import IOStats
from ..trees.blocked_layout import TreeLayout
from ..trees.weighted import WeightedTree, WNode
from .buffered_bitmap import BufferedBitmapIndex
from .interface import RangeResult, SecondaryIndex, SpaceBreakdown

LEAF_CLASS = 0  # class id for the leaf level; materialized levels are >= 1


class DynamicSecondaryIndex(SecondaryIndex):
    """Theorem 7: range queries with fully dynamic ``change``/``append``."""

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        branching: int = 8,
        rebuild_factor: float = 2.0,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        if rebuild_factor <= 1.0:
            raise InvalidParameterError("rebuild_factor must exceed 1")
        self._sigma = sigma
        self._branching = branching
        self._rebuild_factor = rebuild_factor
        self._block_bits = block_bits
        self._mem_blocks = mem_blocks
        self._stats = disk.stats if disk is not None else IOStats()
        self._x = list(x)
        for ch in self._x:
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
        self.rebuilds = 0
        self._build_structure()

    # ------------------------------------------------------------------
    # (Re)construction
    # ------------------------------------------------------------------

    def _build_structure(self) -> None:
        # Rebuilds inherit the previous device's latency model: a
        # global rebuild swaps the bits, not the timing characteristics.
        latency_s = self._disk.latency_s if hasattr(self, "_disk") else 0.0
        self._disk = Disk(
            self._block_bits,
            self._mem_blocks,
            stats=self._stats,
            latency_s=latency_s,
        )
        self._updates_since_build = 0
        self._built_n = len(self._x)
        self._char_bits = max(1, (self._sigma - 1).bit_length())
        # The indexed string, on disk, fixed width (read by `change`).
        # Headroom for appends: a global rebuild fires before the string
        # doubles, so 2n + 64 slots always suffice.
        self._x_offset = self._disk.alloc(
            (2 * max(1, len(self._x)) + 64) * self._char_bits
        )
        for i, ch in enumerate(self._x):
            self._disk.write_bits(
                self._x_offset + i * self._char_bits, ch, self._char_bits
            )
        if not self._x:
            self._tree = None
            self._layout = None
            self._level_indexes: dict[int, BufferedBitmapIndex] = {}
            self._added: dict[int, int] = {}
            self._char_class_key: dict[int, dict[int, int]] = {}
            return
        self._tree = WeightedTree.build(
            self._x, self._sigma, self._branching, split_heavy=False
        )
        self._mat_levels = self._tree.materialized_levels
        self._layout = TreeLayout(self._tree, self._disk)
        self._added = {}
        # One Theorem-6 index per materialized class.  Class l >= 1
        # covers the *internal* nodes of materialized level l; class
        # LEAF_CLASS covers the leaves in left-to-right order.
        self._class_nodes: dict[int, list[WNode]] = {}
        self._node_key: dict[int, tuple[int, int]] = {}  # node_id -> (class, key)
        for level in sorted(self._mat_levels):
            if level > self._tree.height:
                continue
            internal = [v for v in self._tree.levels[level] if not v.is_leaf]
            if internal:
                self._class_nodes[level] = internal
        self._class_nodes[LEAF_CLASS] = list(self._tree.leaves)
        self._level_indexes = {}
        for cls_id, nodes in self._class_nodes.items():
            for key, node in enumerate(nodes):
                self._node_key[node.node_id] = (cls_id, key)
            self._level_indexes[cls_id] = BufferedBitmapIndex(
                self._disk,
                len(nodes),
                [self._tree.node_positions(v) for v in nodes],
                branching=self._branching,
                rebuild_factor=self._rebuild_factor,
            )
        # Per character: the (class, key) pairs its positions live in —
        # one per materialized ancestor level plus its leaf.
        self._char_class_key = {}
        for ch in range(self._sigma):
            if self._tree.char_count(ch) == 0:
                continue
            leaf = self._tree.leaf_for_char_last(ch)
            targets: dict[int, int] = {}
            for node in self._tree.path_to(leaf):
                pair = self._node_key.get(node.node_id)
                if pair is not None:
                    targets[pair[0]] = pair[1]
            self._char_class_key[ch] = targets

    def _maybe_rebuild(self) -> None:
        if self._updates_since_build >= max(1, self._built_n):
            self.rebuilds += 1
            self._build_structure()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def append(self, ch: int) -> None:
        """Append ``ch`` at the end of the string."""
        if ch < 0 or ch >= self._sigma:
            raise InvalidParameterError(
                f"character {ch} outside alphabet [0, {self._sigma})"
            )
        pos = len(self._x)
        self._x.append(ch)
        if self._tree is None or ch not in self._char_class_key:
            self.rebuilds += 1
            self._build_structure()
            return
        self._write_char(pos, ch)
        for cls_id, key in self._char_class_key[ch].items():
            self._level_indexes[cls_id].insert(key, pos)
        for node in self._path_nodes(ch):
            self._added[node.node_id] = self._added.get(node.node_id, 0) + 1
        self._updates_since_build += 1
        self._maybe_rebuild()

    def change(self, i: int, ch: int) -> None:
        """Change ``x[i]`` to ``ch`` (§4's ``change(x, i, alpha)``)."""
        if i < 0 or i >= len(self._x):
            raise UpdateError(f"position {i} outside the string")
        if ch < 0 or ch >= self._sigma:
            raise InvalidParameterError(
                f"character {ch} outside alphabet [0, {self._sigma})"
            )
        old = self._read_char(i)
        if old == ch:
            return
        self._x[i] = ch
        if self._tree is None or ch not in self._char_class_key:
            self.rebuilds += 1
            self._build_structure()
            return
        self._write_char(i, ch)
        for cls_id, key in self._char_class_key[old].items():
            self._level_indexes[cls_id].delete(key, i)
        for cls_id, key in self._char_class_key[ch].items():
            self._level_indexes[cls_id].insert(key, i)
        for node in self._path_nodes(old):
            self._added[node.node_id] = self._added.get(node.node_id, 0) - 1
        for node in self._path_nodes(ch):
            self._added[node.node_id] = self._added.get(node.node_id, 0) + 1
        self._updates_since_build += 1
        self._maybe_rebuild()

    def _path_nodes(self, ch: int) -> list[WNode]:
        leaf = self._tree.leaf_for_char_last(ch)
        return self._tree.path_to(leaf)

    def _read_char(self, i: int) -> int:
        """Read ``x[i]`` from the on-disk string (O(1) I/Os)."""
        return self._disk.read_bits(
            self._x_offset + i * self._char_bits, self._char_bits
        )

    def _write_char(self, i: int, ch: int) -> None:
        self._disk.write_bits(
            self._x_offset + i * self._char_bits, ch, self._char_bits
        )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._x)

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    @property
    def stats(self) -> IOStats:
        return self._stats

    @property
    def tree(self) -> WeightedTree | None:
        return self._tree

    def space(self) -> SpaceBreakdown:
        payload = sum(ix.size_bits for ix in self._level_indexes.values())
        layout_bits = self._layout.size_bits if self._layout is not None else 0
        string_bits = len(self._x) * self._char_bits
        return SpaceBreakdown(
            payload_bits=payload,
            directory_bits=layout_bits + string_bits,
        )

    def _node_weight(self, node: WNode) -> int:
        return node.weight + self._added.get(node.node_id, 0)

    def count_range(self, char_lo: int, char_hi: int) -> int:
        self._check_range(char_lo, char_hi)
        if self._tree is None:
            return 0
        canonical, visited = self._tree.canonical_cover(char_lo, char_hi)
        self._layout.touch_nodes(list(visited) + list(canonical))
        return sum(self._node_weight(v) for v in canonical)

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        n = len(self._x)
        if self._tree is None:
            return RangeResult.empty(n)
        z = self.count_range(char_lo, char_hi)
        if z == 0:
            return RangeResult.empty(n)
        if z > n // 2:
            parts: list[list[int]] = []
            if char_lo > 0:
                parts.append(self._query_positions(0, char_lo - 1))
            if char_hi < self._sigma - 1:
                parts.append(self._query_positions(char_hi + 1, self._sigma - 1))
            return RangeResult(union_sorted(parts), n, complemented=True)
        return RangeResult(self._query_positions(char_lo, char_hi), n)

    # ------------------------------------------------------------------
    # Query internals
    # ------------------------------------------------------------------

    def _is_materialized(self, node: WNode) -> bool:
        return node.node_id in self._node_key

    def _query_positions(self, char_lo: int, char_hi: int) -> list[int]:
        canonical, visited = self._tree.canonical_cover(char_lo, char_hi)
        directory_nodes: list[WNode] = list(visited) + list(canonical)
        point_queries: list[tuple[int, int]] = []
        for v in canonical:
            if self._is_materialized(v):
                point_queries.append(self._node_key[v.node_id])
            else:
                frontier, skipped = self._tree.materialized_frontier(
                    v, self._is_materialized
                )
                directory_nodes.extend(skipped)
                directory_nodes.extend(frontier)
                point_queries.extend(
                    self._node_key[d.node_id] for d in frontier
                )
        self._layout.touch_nodes(directory_nodes)
        lists = [
            self._level_indexes[cls_id].point_query(key)
            for cls_id, key in point_queries
        ]
        return union_sorted(lists)

    def flush_all(self) -> None:
        """Force-apply all buffered updates (tests and benchmarks)."""
        for ix in self._level_indexes.values():
            ix.flush_all()
