"""The public secondary-index protocol and query results.

The problem (§1.1): store ``x = x1..xn`` over an ordered alphabet
``Sigma`` and answer *alphabet range queries* — given ``[al, ar]``
return ``I[al;ar] = {i | xi in [al, ar]}`` — with the answer produced
in compressed form (``O(lg C(n, z))`` bits).

:class:`RangeResult` is that compressed-form answer: a sorted position
list plus a complement flag (§2.1's trick answers queries with
``z > n/2`` by computing the two flanking queries and returning the
complement), and the ability to report the information-theoretic size
of what was produced.

Every index in :mod:`repro.core` and :mod:`repro.baselines` implements
:class:`SecondaryIndex`, so benchmarks and applications can swap
structures freely.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..bits.ebitmap import encoded_length
from ..bits.ops import complement_sorted
from ..errors import QueryError
from ..iomodel.disk import Disk
from ..iomodel.stats import IOStats
from ..model.entropy import lg_binomial


class RangeResult:
    """An exact query answer, possibly represented by its complement."""

    __slots__ = ("_stored", "universe", "complemented")

    def __init__(
        self,
        stored: list[int],
        universe: int,
        complemented: bool = False,
    ) -> None:
        # `stored` is contractually sorted, so bounds-checking its ends
        # is O(1).  Without this, a complemented result over a small or
        # empty universe silently produced positions outside [0,
        # universe) and negative cardinalities.
        if universe < 0:
            raise QueryError(f"universe must be >= 0, got {universe}")
        if stored and (stored[0] < 0 or stored[-1] >= universe):
            raise QueryError(
                f"stored positions [{stored[0]}, {stored[-1]}] fall "
                f"outside universe [0, {universe})"
            )
        self._stored = stored
        self.universe = universe
        self.complemented = complemented

    @property
    def cardinality(self) -> int:
        """``z`` — the number of matching positions."""
        if self.complemented:
            return self.universe - len(self._stored)
        return len(self._stored)

    def positions(self) -> list[int]:
        """Materialize the sorted matching positions."""
        if self.complemented:
            return complement_sorted(self._stored, self.universe)
        return list(self._stored)

    def iter_positions(self):
        """Stream the sorted matching positions without materializing.

        The streaming counterpart of :meth:`positions`: a complemented
        answer (§2.1, ``z > n/2``) is walked as the gaps between its
        stored positions in O(1) extra memory, so a consumer that
        processes positions one at a time never pays the O(z) list the
        materialized form costs.
        """
        if not self.complemented:
            return iter(self._stored)

        def gaps():
            prev = -1
            for p in self._stored:
                yield from range(prev + 1, p)
                prev = p
            yield from range(prev + 1, self.universe)

        return gaps()

    def stored_positions(self) -> list[int]:
        """The list physically held (the complement when flagged)."""
        return list(self._stored)

    def __contains__(self, position: int) -> bool:
        if position < 0 or position >= self.universe:
            return False
        idx = bisect.bisect_left(self._stored, position)
        hit = idx < len(self._stored) and self._stored[idx] == position
        return hit != self.complemented

    def __len__(self) -> int:
        return self.cardinality

    @property
    def is_exact(self) -> bool:
        """Exact results contain no false positives (cf. §3)."""
        return True

    @property
    def compressed_size_bits(self) -> int:
        """Size of the answer in the output format of §1.1.

        Gap/gamma encoding of the stored list — ``O(lg C(n, z))`` bits
        thanks to the complement representation.
        """
        if not self._stored:
            return 0
        return encoded_length(self._stored)

    @property
    def information_bound_bits(self) -> float:
        """``lg C(n, min(z, n-z))`` — the lower bound for any encoding."""
        return lg_binomial(self.universe, len(self._stored))

    @staticmethod
    def empty(universe: int) -> "RangeResult":
        return RangeResult([], universe)


@dataclass(frozen=True)
class SpaceBreakdown:
    """Where an index's bits live; every structure reports one.

    ``payload_bits`` are compressed bitmaps / key lists — the quantity
    the paper's space theorems bound.  ``directory_bits`` are node
    records, extent pointers and counters (the additive
    ``O(sigma lg^2 n)``-style terms).
    """

    payload_bits: int
    directory_bits: int

    @property
    def total_bits(self) -> int:
        return self.payload_bits + self.directory_bits

    def __add__(self, other: "SpaceBreakdown") -> "SpaceBreakdown":
        return SpaceBreakdown(
            self.payload_bits + other.payload_bits,
            self.directory_bits + other.directory_bits,
        )


class SecondaryIndex(ABC):
    """Common protocol of every secondary index in this package."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Length of the indexed string."""

    @property
    @abstractmethod
    def sigma(self) -> int:
        """Alphabet size."""

    @property
    @abstractmethod
    def disk(self) -> Disk:
        """The block device holding the structure."""

    @property
    def stats(self) -> IOStats:
        """The I/O counters (shared with the disk)."""
        return self.disk.stats

    @abstractmethod
    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        """Answer ``I[char_lo; char_hi]`` (inclusive code range)."""

    @abstractmethod
    def space(self) -> SpaceBreakdown:
        """The structure's footprint."""

    def size_bits(self) -> int:
        """Total bits used (payload + directory)."""
        return self.space().total_bits

    def _check_range(self, char_lo: int, char_hi: int) -> None:
        if char_lo < 0 or char_hi >= self.sigma or char_lo > char_hi:
            raise QueryError(
                f"invalid character range [{char_lo}, {char_hi}] for "
                f"alphabet of size {self.sigma}"
            )
