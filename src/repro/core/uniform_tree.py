"""The warm-up structure of §2.1 (Theorem 1).

A complete binary tree ``U`` over the (power-of-two padded) alphabet:
leaf ``ai`` carries the bitmap of ``I{ai}``, an internal node the
bitmap of its character range, *every* level stored.  Space is
``O(n lg^2 sigma)`` bits; a range query is covered by O(lg sigma)
maximal subtrees (at most two per level), and because subtree
cardinalities shrink geometrically down the tree, the bitmaps read sum
to O(T) bits, giving ``O(T/B + lg sigma)`` I/Os.

Compressed bitmaps of each level are concatenated left-to-right on
disk; the per-node ``(offset, length, cardinality)`` directory costs
``O(sigma lg n)`` bits, exactly as the paper accounts.
"""

from __future__ import annotations

from typing import Sequence

from ..bits.bitio import BitWriter
from ..bits.ebitmap import decode_gaps, encode_gaps
from ..bits.ops import union_disjoint_sorted
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk, Extent
from .interface import RangeResult, SecondaryIndex, SpaceBreakdown
from .prefix import PrefixCounts


class UniformTreeIndex(SecondaryIndex):
    """Theorem 1: multi-resolution index over the complete binary tree.

    Parameters
    ----------
    x:
        The string, as dense character codes in ``[0, sigma)``.
    sigma:
        Alphabet size (padded internally to a power of two).
    disk:
        Block device to build on; a private one is created if omitted.
    """

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        for ch in x:
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        self._padded = 1
        while self._padded < sigma:
            self._padded *= 2
        self._build(x)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, x: Sequence[int]) -> None:
        padded = self._padded
        # Per-character position lists (the leaf bitmaps).
        per_char: list[list[int]] = [[] for _ in range(padded)]
        for pos, ch in enumerate(x):
            per_char[ch].append(pos)

        counts = [len(per_char[c]) if c < self._sigma else 0 for c in range(self._sigma)]
        offsets = [0] * (self._sigma + 1)
        for c in range(self._sigma):
            offsets[c + 1] = offsets[c] + counts[c]
        self._prefix = PrefixCounts(self._disk, offsets)

        # Levels: 1 (root) .. lg(padded)+1 (leaves).  levels_nodes[j] is
        # the list of position lists of the 2^(j-1) nodes at level j.
        self._num_levels = padded.bit_length()  # lg(padded) + 1
        level_lists: list[list[list[int]]] = [per_char]
        while len(level_lists[-1]) > 1:
            below = level_lists[-1]
            above = [
                _merge_two(below[2 * i], below[2 * i + 1])
                for i in range(len(below) // 2)
            ]
            level_lists.append(above)
        level_lists.reverse()  # index 0 = root level

        # Store each level as one concatenated extent.
        self._directory: list[list[tuple[int, int, int]]] = []
        self._level_extents: list[Extent] = []
        payload = 0
        for nodes in level_lists:
            writer = BitWriter()
            entries: list[tuple[int, int, int]] = []
            for positions in nodes:
                start = writer.bit_length
                encode_gaps(writer, positions)
                entries.append((start, writer.bit_length - start, len(positions)))
            extent = self._disk.store(writer.getvalue(), writer.bit_length)
            self._level_extents.append(extent)
            self._directory.append(entries)
            payload += writer.bit_length
        self._payload_bits = payload
        # Directory: (offset, length) pair per node, O(lg n) bits each.
        entry_bits = 2 * max(1, (max(payload, 2) - 1).bit_length()) + max(
            1, self._n.bit_length()
        )
        self._directory_bits = sum(len(lvl) for lvl in self._directory) * entry_bits
        # The directory is consulted per canonical node; model it as a
        # disk extent so probes are charged.
        self._dir_offset = self._disk.alloc(self._directory_bits)
        self._dir_entry_bits = entry_bits

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    def space(self) -> SpaceBreakdown:
        return SpaceBreakdown(
            payload_bits=self._payload_bits,
            directory_bits=self._directory_bits + self._prefix.size_bits,
        )

    def count_range(self, char_lo: int, char_hi: int) -> int:
        """``z`` via the prefix array (2 probes, §2.1)."""
        return self._prefix.range_count(char_lo, char_hi)

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        z = self._prefix.range_count(char_lo, char_hi)
        if z == 0:
            return RangeResult.empty(self._n)
        if z > self._n // 2:
            # Complement trick (§2.1): answer the two flanking queries.
            parts: list[list[int]] = []
            if char_lo > 0:
                parts.append(self._query_positions(0, char_lo - 1))
            if char_hi < self._sigma - 1:
                parts.append(self._query_positions(char_hi + 1, self._sigma - 1))
            stored = union_disjoint_sorted(parts)
            return RangeResult(stored, self._n, complemented=True)
        return RangeResult(self._query_positions(char_lo, char_hi), self._n)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _canonical_nodes(self, char_lo: int, char_hi: int) -> list[tuple[int, int]]:
        """Maximal-subtree cover as ``(level_index, node_index)`` pairs.

        Standard segment-tree decomposition: at most two nodes per
        level, O(lg sigma) in total.
        """
        out: list[tuple[int, int]] = []
        stack = [(0, 0, 0, self._padded - 1)]
        while stack:
            level, idx, lo, hi = stack.pop()
            if lo > char_hi or hi < char_lo:
                continue
            if char_lo <= lo and hi <= char_hi:
                out.append((level, idx))
                continue
            mid = (lo + hi) // 2
            stack.append((level + 1, 2 * idx, lo, mid))
            stack.append((level + 1, 2 * idx + 1, mid + 1, hi))
        return out

    def _query_positions(self, char_lo: int, char_hi: int) -> list[int]:
        nodes = self._canonical_nodes(char_lo, char_hi)
        lists: list[list[int]] = []
        for level, idx in nodes:
            # Directory probe (cache-friendly O(1) I/O per node).
            flat_index = ((1 << level) - 1) + idx
            self._disk.touch_range(
                self._dir_offset + flat_index * self._dir_entry_bits,
                self._dir_entry_bits,
            )
            start, nbits, count = self._directory[level][idx]
            if count == 0:
                continue
            extent = self._level_extents[level]
            reader = self._disk.reader(extent.offset + start, nbits)
            lists.append(decode_gaps(reader, count))
        return union_disjoint_sorted(lists)


def _merge_two(a: list[int], b: list[int]) -> list[int]:
    """Linear merge of two disjoint sorted lists."""
    out: list[int] = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        if a[i] < b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out
