"""The prefix-count array ``A`` of §2.1.

``A[i]`` stores the cardinality of ``I[a1; ai]`` (with ``A[0] = 0``), so
the answer cardinality of any range query is ``z = A[r+1] - A[l]`` at
the cost of two O(1)-I/O array probes.  The query algorithm uses ``z``
for two decisions before touching any bitmap: switch to the complement
queries when ``z > n/2``, and (in §3) pick the hash granularity ``j``.

The array lives on disk as fixed-width integers; probes go through the
block cache, so repeated queries pay for it about once.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import InvalidParameterError, QueryError
from ..iomodel.disk import Disk


class PrefixCounts:
    """Disk-resident cumulative character counts."""

    def __init__(self, disk: Disk, char_offsets: Sequence[int]) -> None:
        """``char_offsets`` is ``A``: length ``sigma + 1``, increasing."""
        if len(char_offsets) < 2:
            raise InvalidParameterError("need at least one character")
        if any(b < a for a, b in zip(char_offsets, char_offsets[1:])):
            raise InvalidParameterError("prefix counts must be non-decreasing")
        self.disk = disk
        self.sigma = len(char_offsets) - 1
        self.n = char_offsets[-1]
        self.entry_bits = max(1, self.n.bit_length())
        self._offset = disk.alloc((self.sigma + 1) * self.entry_bits)
        for i, value in enumerate(char_offsets):
            disk.write_bits(self._offset + i * self.entry_bits, value, self.entry_bits)

    @property
    def size_bits(self) -> int:
        """Footprint: ``(sigma + 1) * ceil(lg(n+1))`` bits."""
        return (self.sigma + 1) * self.entry_bits

    def entry(self, i: int) -> int:
        """Read ``A[i]`` (one O(1)-block probe)."""
        if i < 0 or i > self.sigma:
            raise QueryError(f"prefix index {i} outside [0, {self.sigma}]")
        return self.disk.read_bits(
            self._offset + i * self.entry_bits, self.entry_bits
        )

    def range_count(self, char_lo: int, char_hi: int) -> int:
        """``z = A[r+1] - A[l]`` for the inclusive code range."""
        if char_lo < 0 or char_hi >= self.sigma or char_lo > char_hi:
            raise QueryError(f"invalid character range [{char_lo}, {char_hi}]")
        return self.entry(char_hi + 1) - self.entry(char_lo)

    def char_count(self, char: int) -> int:
        """Occurrences of one character."""
        return self.range_count(char, char)
