"""The paper's data structures: Theorems 1-7 plus deletion support."""

from .approximate import ApproximatePaghRaoIndex, ApproximateResult
from .buffered_bitmap import BufferedBitmapIndex
from .buffered_index import BufferedAppendableIndex
from .chains import BlockChain
from .deletions import DeletableIndex, DeletionTracker
from .fully_dynamic import DynamicSecondaryIndex
from .interface import RangeResult, SecondaryIndex, SpaceBreakdown
from .prefix import PrefixCounts
from .semidynamic import AppendableIndex
from .static_index import PaghRaoIndex
from .uniform_tree import UniformTreeIndex

__all__ = [
    "ApproximatePaghRaoIndex",
    "ApproximateResult",
    "AppendableIndex",
    "BlockChain",
    "BufferedAppendableIndex",
    "BufferedBitmapIndex",
    "DeletableIndex",
    "DeletionTracker",
    "DynamicSecondaryIndex",
    "PaghRaoIndex",
    "PrefixCounts",
    "RangeResult",
    "SecondaryIndex",
    "SpaceBreakdown",
    "UniformTreeIndex",
]
