"""Appendable compressed bitmaps stored as chains of blocks (§4.1, §4.2).

The static structure concatenates all bitmaps of a level into one
extent, which cannot grow in place.  The dynamic structures instead
give each bitmap a *chain* of whole blocks: appending a position writes
a gamma-coded gap into the last block (one I/O), allocating a fresh
block when the code does not fit.  Every block opens with an *absolute*
first code — exactly the resynchronization layout §4.2 prescribes
("the first position in each block is stored as an absolute value") —
so each block decodes independently and a split code never straddles a
boundary.

The paper points out (§4.2) that with ``B >= 4 lg n`` the re-blocked
representation at most doubles the space; the same argument bounds the
chain overhead here.
"""

from __future__ import annotations

from typing import Sequence

from ..bits.bitio import BitWriter
from ..bits.ebitmap import decode_gaps
from ..bits.gamma import gamma_length, write_gamma
from ..errors import InvalidParameterError, UpdateError
from ..iomodel.disk import Disk


class BlockChain:
    """A growable gap-encoded position set occupying whole blocks."""

    __slots__ = ("disk", "blocks", "block_counts", "block_used", "count", "last_pos")

    def __init__(self, disk: Disk) -> None:
        self.disk = disk
        self.blocks: list[int] = []        # block ids
        self.block_counts: list[int] = []  # positions encoded per block
        self.block_used: list[int] = []    # bits used per block
        self.count = 0
        self.last_pos = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, disk: Disk, positions: Sequence[int]) -> "BlockChain":
        """Bulk-load a strictly increasing position list."""
        chain = cls(disk)
        B = disk.block_bits
        writer: BitWriter | None = None
        block_count = 0
        prev = -1
        pending_first = True

        def close_block() -> None:
            nonlocal writer, block_count
            if writer is None:
                return
            block_id = disk.alloc_block() // B
            disk.write_bytes(block_id * B, writer.getvalue(), writer.bit_length)
            chain.blocks.append(block_id)
            chain.block_counts.append(block_count)
            chain.block_used.append(writer.bit_length)
            writer = None
            block_count = 0

        for pos in positions:
            if pos <= prev:
                raise InvalidParameterError("positions must be strictly increasing")
            code = pos + 1 if pending_first else pos - prev
            need = gamma_length(code)
            if writer is not None and writer.bit_length + need > B:
                close_block()
                pending_first = True
                code = pos + 1
                need = gamma_length(code)
            if writer is None:
                if need > B:
                    raise InvalidParameterError(
                        "block size too small for a single gamma code; "
                        "need B >= 2 lg n"
                    )
                writer = BitWriter()
            write_gamma(writer, code)
            block_count += 1
            pending_first = False
            prev = pos
        close_block()
        chain.count = len(positions)
        chain.last_pos = prev
        return chain

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def append(self, pos: int) -> None:
        """Append one position ``> last_pos`` in O(1) block writes (§4.1)."""
        if pos <= self.last_pos:
            raise UpdateError(
                f"appended position {pos} not beyond last position {self.last_pos}"
            )
        B = self.disk.block_bits
        if self.blocks:
            gap = pos - self.last_pos
            need = gamma_length(gap)
            used = self.block_used[-1]
            if used + need <= B:
                self._write_code(self.blocks[-1], used, gap)
                self.block_used[-1] = used + need
                self.block_counts[-1] += 1
                self.count += 1
                self.last_pos = pos
                return
        # Start a fresh block with an absolute first code.
        code = pos + 1
        need = gamma_length(code)
        if need > B:
            raise UpdateError("block size too small for a single gamma code")
        block_id = self.disk.alloc_block() // B
        self._write_code(block_id, 0, code)
        self.blocks.append(block_id)
        self.block_used.append(need)
        self.block_counts.append(1)
        self.count += 1
        self.last_pos = pos

    def _write_code(self, block_id: int, bit_offset: int, value: int) -> None:
        writer = BitWriter()
        write_gamma(writer, value)
        data = int.from_bytes(writer.getvalue(), "big") >> (
            len(writer.getvalue()) * 8 - writer.bit_length
        )
        self.disk.write_bits(
            block_id * self.disk.block_bits + bit_offset, data, writer.bit_length
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_positions(self) -> list[int]:
        """Decode the whole chain; charges one read per block."""
        out: list[int] = []
        B = self.disk.block_bits
        for block_id, used, cnt in zip(
            self.blocks, self.block_used, self.block_counts
        ):
            reader = self.disk.reader(block_id * B, used)
            decoded = decode_gaps(reader, cnt)
            # Blocks resynchronize with pos+1 absolutes, matching the
            # decode_gaps convention (first gap relative to -1).
            out.extend(decoded)
        return out

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def size_bits(self) -> int:
        """Allocated footprint: whole blocks."""
        return len(self.blocks) * self.disk.block_bits

    @property
    def used_bits(self) -> int:
        """Bits actually encoding positions (compression-rate numerator)."""
        return sum(self.block_used)

    @property
    def directory_bits(self) -> int:
        """Per-block metadata: O(lg n) bits per block."""
        return len(self.blocks) * 3 * 48
