"""Deletion support for the dynamic index (§4, introduction).

The paper reduces deletions to ``change``: "extend the alphabet with a
new character ∞ that is never matched by a range query; deleting a
character can be done by simply changing it to ∞."  Positions then stay
stable (the semantics relational systems want when row ids are
physical).  For the alternative semantics — positions relative to the
current, compacted string — the paper maintains "a B-tree over the
deleted positions with subtree sizes maintained in all nodes", allowing
position translation in ``O(lg_b n)`` I/Os, and performs a global
rebuild when a constant fraction of characters are deleted.

:class:`DeletableIndex` implements both:

* physical positions: :meth:`delete` + :meth:`range_query` (results
  never contain deleted positions, because ∞ is outside every query
  range);
* logical positions: :meth:`logical_to_physical` /
  :meth:`physical_to_logical` through the counted B-tree.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import InvalidParameterError, UpdateError
from ..iomodel.disk import Disk
from ..trees.btree import BTree
from .fully_dynamic import DynamicSecondaryIndex
from .interface import RangeResult, SecondaryIndex, SpaceBreakdown


class DeletionTracker:
    """The counted B-tree over deleted positions (§4)."""

    def __init__(self, disk: Disk, key_bits: int = 48) -> None:
        self._tree = BTree(disk, key_bits=key_bits)

    def __len__(self) -> int:
        return len(self._tree)

    def mark_deleted(self, pos: int) -> None:
        if self.is_deleted(pos):
            raise UpdateError(f"position {pos} already deleted")
        self._tree.insert(pos)

    def is_deleted(self, pos: int) -> bool:
        return self._tree.contains(pos)

    def deleted_at_or_before(self, pos: int) -> int:
        """Rank: number of deleted positions ``<= pos`` (O(lg_b n) I/Os)."""
        return self._tree.rank(pos)

    def physical_to_logical(self, pos: int) -> int:
        """Logical index of a live physical position."""
        if self.is_deleted(pos):
            raise UpdateError(f"position {pos} is deleted")
        return pos - self.deleted_at_or_before(pos)

    def logical_to_physical(self, logical: int, n: int) -> int:
        """Physical position of the ``logical``-th live element.

        Binary search on ``f(p) = p + 1 - rank(p)`` (the number of live
        positions at or before ``p``), which is non-decreasing; each
        probe is one B-tree rank of O(lg_b n) I/Os.
        """
        if logical < 0:
            raise InvalidParameterError("logical index must be >= 0")
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            live = mid + 1 - self.deleted_at_or_before(mid)
            if live >= logical + 1:
                hi = mid
            else:
                lo = mid + 1
        if (
            lo >= n
            or self.is_deleted(lo)
            or lo + 1 - self.deleted_at_or_before(lo) != logical + 1
        ):
            raise InvalidParameterError(f"no live element with logical index {logical}")
        return lo

    @property
    def size_bits(self) -> int:
        return self._tree.size_bits


class DeletableIndex(SecondaryIndex):
    """A fully dynamic secondary index with deletions via the ∞ character.

    The wrapped :class:`DynamicSecondaryIndex` runs over the alphabet
    extended by one: code ``sigma`` is ∞.  A global rebuild compacts the
    string once more than ``rebuild_fraction`` of it is deleted.
    """

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        branching: int = 8,
        rebuild_fraction: float = 0.5,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if not 0.0 < rebuild_fraction <= 1.0:
            raise InvalidParameterError("rebuild_fraction must be in (0, 1]")
        self._user_sigma = sigma
        self._rebuild_fraction = rebuild_fraction
        self._inner = DynamicSecondaryIndex(
            x,
            sigma + 1,  # reserve code sigma for ∞
            disk=disk,
            branching=branching,
            block_bits=block_bits,
            mem_blocks=mem_blocks,
        )
        self._tracker = DeletionTracker(self._inner.disk)
        self.compactions = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    @property
    def infinity(self) -> int:
        """The ∞ character code (never matched by queries)."""
        return self._user_sigma

    def append(self, ch: int) -> None:
        if ch < 0 or ch >= self._user_sigma:
            raise InvalidParameterError(
                f"character {ch} outside alphabet [0, {self._user_sigma})"
            )
        self._inner.append(ch)

    def change(self, pos: int, ch: int) -> None:
        if ch < 0 or ch >= self._user_sigma:
            raise InvalidParameterError(
                f"character {ch} outside alphabet [0, {self._user_sigma})"
            )
        if self._tracker.is_deleted(pos):
            raise UpdateError(f"position {pos} is deleted")
        self._inner.change(pos, ch)

    def delete(self, pos: int) -> None:
        """Delete the character at physical position ``pos`` (→ ∞)."""
        self._tracker.mark_deleted(pos)  # raises if already deleted
        self._inner.change(pos, self.infinity)
        if len(self._tracker) >= self._rebuild_fraction * max(1, self._inner.n):
            self._compact()

    def _compact(self) -> None:
        """Global rebuild dropping deleted positions (§4: "global
        rebuilding is performed to reduce the space")."""
        live = [ch for ch in self._inner._x if ch != self.infinity]
        disk = Disk(
            self._inner._block_bits,
            self._inner._mem_blocks,
            stats=self._inner.stats,
            latency_s=self._inner.disk.latency_s,
        )
        self._inner = DynamicSecondaryIndex(
            live,
            self._user_sigma + 1,
            disk=disk,
            branching=self._inner._branching,
            block_bits=self._inner._block_bits,
            mem_blocks=self._inner._mem_blocks,
        )
        self._tracker = DeletionTracker(self._inner.disk)
        self.compactions += 1

    # ------------------------------------------------------------------
    # Position translation
    # ------------------------------------------------------------------

    def is_deleted(self, pos: int) -> bool:
        return self._tracker.is_deleted(pos)

    def live_count(self) -> int:
        """Number of live (undeleted) positions."""
        return self._inner.n - len(self._tracker)

    def physical_to_logical(self, pos: int) -> int:
        """Rank of a live physical position among live positions."""
        return self._tracker.physical_to_logical(pos)

    def logical_to_physical(self, logical: int) -> int:
        """Physical position of the ``logical``-th live element."""
        return self._tracker.logical_to_physical(logical, self._inner.n)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Physical string length (deleted positions included)."""
        return self._inner.n

    @property
    def sigma(self) -> int:
        return self._user_sigma

    @property
    def disk(self) -> Disk:
        return self._inner.disk

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        """Matching *physical* positions; never reports deleted ones.

        Deleted positions hold ∞ (= code sigma), which no user query
        range covers; even the complement trick stays correct because
        the flanking queries over ``[hi+1, sigma]`` include ∞.
        """
        self._check_range(char_lo, char_hi)
        return self._inner.range_query(char_lo, char_hi)

    def count_range(self, char_lo: int, char_hi: int) -> int:
        return self._inner.count_range(char_lo, char_hi)

    def space(self) -> SpaceBreakdown:
        inner = self._inner.space()
        return SpaceBreakdown(
            payload_bits=inner.payload_bits,
            directory_bits=inner.directory_bits + self._tracker.size_bits,
        )
