"""Buffered appends — trading space for faster updates (§4.1.1, Theorem 5).

Instead of writing every append into ``O(lg lg n)`` bitmaps right away,
each tree node carries a ``B``-bit buffer (the buffer-tree idea of
reference [3]).  An append enters the root buffer — "always kept in the
internal memory" — and batches of ``Theta(b)`` operations trickle down
to the child that has accumulated the most, costing amortized
``O(lg(n)/b)`` I/Os per append.  Queries additionally read the buffers
that may hold operations belonging to the answer.

Flush semantics (DESIGN.md substitution 4): when a node ``u`` with an
explicitly stored bitmap flushes, *all* operations currently in its
buffer are appended to ``u``'s bitmap — they arrived in increasing
position order, so the chain append stays valid — and each operation
records the deepest materialized level it has been applied at
(``applied_upto``).  The invariant: an operation sitting in ``w``'s
buffer has been applied to exactly the materialized ancestors of ``w``
of level ``<= applied_upto``.  A query therefore includes a pending
operation iff the bitmap it read for that operation's character sits
*deeper* than ``applied_upto``.
"""

from __future__ import annotations

from typing import Sequence

from ..bits.ops import union_sorted
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk
from ..trees.buffers import NodeBuffer
from ..trees.weighted import WNode
from .semidynamic import AppendableIndex


class _PendingOp:
    """One buffered append: character, position, deepest applied level."""

    __slots__ = ("char", "pos", "applied_upto")

    def __init__(self, char: int, pos: int) -> None:
        self.char = char
        self.pos = pos
        self.applied_upto = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_PendingOp({self.char}, {self.pos}, upto={self.applied_upto})"


class BufferedAppendableIndex(AppendableIndex):
    """Theorem 5: appends in amortized O(lg n / b) I/Os via node buffers.

    Space grows by one ``B``-bit buffer per tree node —
    ``O(sigma lg n (B + lg n))`` extra bits, the theorem's space term.
    """

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        branching: int = 8,
        rebuild_factor: float = 2.0,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        super().__init__(
            x,
            sigma,
            disk=disk,
            branching=branching,
            rebuild_factor=rebuild_factor,
            block_bits=block_bits,
            mem_blocks=mem_blocks,
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _post_build(self) -> None:
        # One B-bit buffer per internal node; ops are (char, pos) records
        # of O(lg n) bits each.
        op_bits = max(1, (self._sigma - 1).bit_length()) + 48
        self._op_bits = op_bits
        self._buffers: dict[int, NodeBuffer] = {}
        for node in self._tree.iter_nodes():
            if not node.is_leaf:
                self._buffers[node.node_id] = NodeBuffer(self._disk, op_bits)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def append(self, ch: int) -> None:
        if ch < 0 or ch >= self._sigma:
            raise InvalidParameterError(
                f"character {ch} outside alphabet [0, {self._sigma})"
            )
        pos = len(self._x)
        self._x.append(ch)
        if self._tree is None or ch not in self._char_path:
            self.rebuilds += 1
            self._build_structure()
            return
        # Weights must reflect the append immediately (queries compute z
        # from them), independently of where the op is buffered.
        for node in self._char_path[ch]:
            self._added[node.node_id] = self._added.get(node.node_id, 0) + 1
        op = _PendingOp(ch, pos)
        root = self._tree.root
        if root.is_leaf:
            # Degenerate single-character tree: apply directly.
            self._chains[root.node_id].append(pos)
        else:
            buf = self._buffers[root.node_id]
            buf.append(op, charge=False)  # root buffer is pinned (§4.1.1)
            if buf.is_full:
                self._flush(root)
        if self._needs_rebuild():
            self.rebuilds += 1
            self._build_structure()

    def _child_on_path(self, node: WNode, char: int) -> WNode:
        """The child of ``node`` on the path to ``char``'s target leaf."""
        path = self._char_path[char]
        # path[k] is the node at level k+1; node is path[node.level - 1].
        return path[node.level]

    def _flush(self, node: WNode) -> None:
        """Flush ``node``'s buffer one step down (§4.1.1)."""
        buf = self._buffers[node.node_id]
        if self._is_materialized(node):
            chain = self._chains[node.node_id]
            for op in buf.ops:
                if op.applied_upto < node.level:
                    chain.append(op.pos)
                    op.applied_upto = node.level
        child, batch = buf.take_for_child(
            lambda op: self._child_on_path(node, op.char)
        )
        if child.is_leaf:
            chain = self._chains[child.node_id]
            for op in batch:
                chain.append(op.pos)
        else:
            cbuf = self._buffers[child.node_id]
            while len(cbuf) + len(batch) > cbuf.capacity:
                self._flush(child)
            cbuf.extend(batch)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _query_positions(self, char_lo: int, char_hi: int) -> list[int]:
        read_nodes, directory_nodes, slab_nodes = self._collect_read_set(
            char_lo, char_hi
        )
        self._layout.touch_nodes(directory_nodes)
        lists = [self._chains[v.node_id].read_positions() for v in read_nodes]
        pending = self._pending_positions(
            char_lo, char_hi, read_nodes, directory_nodes, slab_nodes
        )
        if pending:
            lists.append(pending)
        # Pending ops are disjoint from chain contents by the
        # applied_upto rule, but union_sorted dedupes defensively.
        return union_sorted(lists)

    def _pending_positions(
        self,
        char_lo: int,
        char_hi: int,
        read_nodes: list[WNode],
        directory_nodes: list[WNode],
        slab_nodes: list[WNode],
    ) -> list[int]:
        """Positions sitting in buffers that the read bitmaps miss."""
        # Buffers that can hold relevant, unapplied ops: ancestors of
        # canonical nodes (the boundary paths), the canonical/read nodes
        # themselves, and the slab between a canonical node and its
        # materialized frontier (§4.1.1: O(lg n) buffers).
        candidates: dict[int, WNode] = {}
        for v in list(directory_nodes) + list(slab_nodes) + list(read_nodes):
            if not v.is_leaf:
                candidates[v.node_id] = v
        root_id = self._tree.root.node_id
        out: list[int] = []
        for node_id, v in candidates.items():
            buf = self._buffers.get(node_id)
            if buf is None or not buf.ops:
                continue
            ops = buf.read(charge=(node_id != root_id))
            for op in ops:
                if op.char < char_lo or op.char > char_hi:
                    continue
                covering = self._covering_read_node(op, read_nodes)
                if covering is not None and op.applied_upto < covering.level:
                    out.append(op.pos)
        out.sort()
        return out

    def _covering_read_node(
        self, op: _PendingOp, read_nodes: list[WNode]
    ) -> WNode | None:
        """The read node whose bitmap would contain ``op`` once applied.

        Appends of a character extend its last occurrence chunk, so the
        covering node is the read node that is an ancestor-of-or-equal
        to that chunk's leaf.
        """
        leaf = self._char_path[op.char][-1]
        for v in read_nodes:
            if v.occ_lo <= leaf.occ_lo and leaf.occ_hi <= v.occ_hi:
                return v
        return None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def space(self):
        base = super().space()
        from .interface import SpaceBreakdown

        buffer_bits = sum(b.size_bits for b in self._buffers.values())
        return SpaceBreakdown(
            payload_bits=base.payload_bits,
            directory_bits=base.directory_bits + buffer_bits,
        )

    @property
    def pending_ops(self) -> int:
        """Operations currently buffered (for tests and diagnostics)."""
        return sum(len(b) for b in self._buffers.values())
