"""The optimal static secondary index of §2.2 (Theorem 2).

The headline contribution of the paper: a structure that is
simultaneously

* space-optimal — ``O(n H0 + n + sigma lg^2 n)`` bits, within a
  constant factor of the entropy of the string itself, and
* query-optimal — ``O(z lg(n/z)/B + lg_b n + lg lg n)`` I/Os, within a
  constant factor of just *reading* a precomputed compressed answer.

Construction (§2.2): build the pruned weight-balanced tree over the
character multiset (:mod:`repro.trees.weighted`); associate with each
node the compressed bitmap of the positions below it; *materialize*
(store) only the bitmaps on levels ``1, 2, 4, 8, ...`` and at the
leaves, concatenated left-to-right per level.  A query covers the range
with O(lg n) canonical subtrees; a canonical node whose level is not
materialized is reconstructed by merging its nearest materialized
descendants, whose compressed sizes are within a factor two of the
missing bitmap — so the bits read stay ``O(z lg(n/z))``.

The prefix-count array (§2.1) supplies ``z`` up front for the
complement trick; the blocked tree layout (§2.2) bounds the descent to
``O(lg_b n)`` I/Os.
"""

from __future__ import annotations

from typing import Literal, Sequence

from ..bits.bitio import BitWriter
from ..bits.ebitmap import decode_gaps, encode_gaps
from ..bits.ops import union_disjoint_sorted
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk
from ..trees.blocked_layout import TreeLayout
from ..trees.weighted import WeightedTree, WNode
from .interface import RangeResult, SecondaryIndex, SpaceBreakdown
from .prefix import PrefixCounts

Materialization = Literal["exponential", "all"]


class PaghRaoIndex(SecondaryIndex):
    """Theorem 2: the space- and query-optimal static secondary index.

    Parameters
    ----------
    x:
        The string as dense character codes in ``[0, sigma)``.
    sigma:
        Alphabet size.
    disk:
        Block device; a private one is created if omitted.
    branching:
        The weight-balanced tree's branching parameter ``c > 4``.
    materialization:
        ``"exponential"`` is the paper's scheme (levels 1, 2, 4, ... and
        the leaves); ``"all"`` stores every level — the "naive upper
        bound" of §2.2, kept for the E10 ablation.
    """

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        branching: int = 8,
        materialization: Materialization = "exponential",
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if materialization not in ("exponential", "all"):
            raise InvalidParameterError(
                "materialization must be 'exponential' or 'all'"
            )
        self._disk = disk if disk is not None else Disk(block_bits, mem_blocks)
        self._n = len(x)
        self._sigma = sigma
        self._tree = WeightedTree.build(x, sigma, branching)
        if materialization == "all":
            self._mat_levels = frozenset(range(1, self._tree.height + 1))
        else:
            self._mat_levels = self._tree.materialized_levels
        self._layout = TreeLayout(self._tree, self._disk)
        self._prefix = PrefixCounts(self._disk, self._tree.char_offsets)
        # node_id -> (absolute bit offset, bit length, cardinality)
        self._node_extent: dict[int, tuple[int, int, int]] = {}
        self._payload_bits = 0
        self._store_bitmaps()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _is_materialized(self, node: WNode) -> bool:
        return node.is_leaf or node.level in self._mat_levels

    def _store_level(self, nodes: list[WNode]) -> None:
        """Concatenate and store the bitmaps of ``nodes`` left-to-right."""
        writer = BitWriter()
        starts: list[tuple[WNode, int, int]] = []
        for node in nodes:
            start = writer.bit_length
            encode_gaps(writer, self._tree.node_positions(node))
            starts.append((node, start, writer.bit_length - start))
        extent = self._disk.store(writer.getvalue(), writer.bit_length)
        for node, start, nbits in starts:
            self._node_extent[node.node_id] = (
                extent.offset + start,
                nbits,
                node.weight,
            )
        self._payload_bits += writer.bit_length

    def _store_bitmaps(self) -> None:
        for level in sorted(self._mat_levels):
            if level > self._tree.height:
                continue
            internal = [v for v in self._tree.levels[level] if not v.is_leaf]
            if internal:
                self._store_level(internal)
        # All leaves, in left-to-right (character, position) order.
        self._store_level(self._tree.leaves)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    @property
    def tree(self) -> WeightedTree:
        """The underlying weight-balanced tree (read-only access)."""
        return self._tree

    def space(self) -> SpaceBreakdown:
        return SpaceBreakdown(
            payload_bits=self._payload_bits,
            directory_bits=self._layout.size_bits + self._prefix.size_bits,
        )

    def count_range(self, char_lo: int, char_hi: int) -> int:
        """``z`` from the prefix array — two O(1) probes (§2.1)."""
        return self._prefix.range_count(char_lo, char_hi)

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        z = self._prefix.range_count(char_lo, char_hi)
        if z == 0:
            return RangeResult.empty(self._n)
        if z > self._n // 2:
            parts: list[list[int]] = []
            if char_lo > 0:
                parts.append(self._query_positions(0, char_lo - 1))
            if char_hi < self._sigma - 1:
                parts.append(self._query_positions(char_hi + 1, self._sigma - 1))
            return RangeResult(
                union_disjoint_sorted(parts), self._n, complemented=True
            )
        return RangeResult(self._query_positions(char_lo, char_hi), self._n)

    # ------------------------------------------------------------------
    # Query internals
    # ------------------------------------------------------------------

    def _collect_read_set(
        self, char_lo: int, char_hi: int
    ) -> tuple[list[WNode], list[WNode], list[WNode]]:
        """Canonical cover and the bitmap/directory node sets.

        Returns ``(read_nodes, directory_nodes, slab_nodes)``:
        materialized nodes whose bitmaps are read, all tree nodes whose
        records the query visits, and the non-materialized nodes
        between canonical nodes and their frontiers (needed by the
        buffered variants).
        """
        canonical, visited = self._tree.canonical_cover(char_lo, char_hi)
        read_nodes: list[WNode] = []
        directory_nodes: list[WNode] = list(visited) + list(canonical)
        slab_nodes: list[WNode] = []
        for v in canonical:
            if self._is_materialized(v):
                read_nodes.append(v)
            else:
                frontier, skipped = self._tree.materialized_frontier(
                    v, self._is_materialized
                )
                read_nodes.extend(frontier)
                directory_nodes.extend(skipped)
                directory_nodes.extend(frontier)
                slab_nodes.extend(skipped)
        return read_nodes, directory_nodes, slab_nodes

    def _query_positions(self, char_lo: int, char_hi: int) -> list[int]:
        read_nodes, directory_nodes, _ = self._collect_read_set(char_lo, char_hi)
        self._layout.touch_nodes(directory_nodes)
        return union_disjoint_sorted(self._read_bitmaps(read_nodes))

    def _read_bitmaps(self, read_nodes: list[WNode]) -> list[list[int]]:
        """Read and decode bitmaps, coalescing adjacent extents.

        Frontier nodes of one canonical subtree are consecutive within
        their level's concatenated extent, so their payloads form one
        contiguous range — the "two consecutive chunks" read of §2.2.
        """
        entries = sorted(
            (self._node_extent[v.node_id] for v in read_nodes),
            key=lambda e: e[0],
        )
        lists: list[list[int]] = []
        i = 0
        while i < len(entries):
            run_start = entries[i][0]
            run_end = entries[i][0] + entries[i][1]
            j = i + 1
            while j < len(entries) and entries[j][0] == run_end:
                run_end += entries[j][1]
                j += 1
            reader = self._disk.reader(run_start, run_end - run_start)
            for k in range(i, j):
                _, _, count = entries[k]
                if count:
                    lists.append(decode_gaps(reader, count))
            i = j
        return lists
