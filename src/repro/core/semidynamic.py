"""The semi-dynamic (append-only) index of §4.1 (Theorem 4).

OLAP and scientific workloads are "typically read and append only"
(§4.1), so the first dynamization supports just ``append(x, alpha)``.
The straightforward scheme: perform the append on every bitmap it
affects — one per materialized level, found through a per-character
array of pointers to the block holding that character's most recent
occurrence ("the ith entry ... stores a pointer to the disk block
containing the last occurrence of a among all bitmaps at the ith
materialized level").  That is ``O(lg lg n)`` block writes per append.

Realization notes (see DESIGN.md substitutions):

* materialized bitmaps become :class:`~repro.core.chains.BlockChain`
  block chains (append = write the last block; §4.2's absolute-first-
  code layout), which is what makes the in-place append O(1) I/Os;
* weight balance is restored by a global rebuild once the string has
  grown by a constant factor since the last build, the classic
  global-rebuilding realization of the paper's subtree-rebuild
  amortization: the rebuild cost O(n H0 / B + sigma lg n) spread over
  Omega(n) appends is o(1) I/Os per append, below the O(lg lg n)
  in-place cost, and node weights stay within a factor two of their
  built values so every query bound is preserved;
* appending a character that did not occur at the last rebuild has no
  leaf to extend, so it triggers the rebuild immediately (amortized
  away whenever sigma = o(n)).
"""

from __future__ import annotations

from typing import Sequence

from ..bits.ops import union_disjoint_sorted
from ..errors import InvalidParameterError
from ..iomodel.disk import Disk
from ..iomodel.stats import IOStats
from ..trees.blocked_layout import TreeLayout
from ..trees.weighted import WeightedTree, WNode
from .chains import BlockChain
from .interface import RangeResult, SecondaryIndex, SpaceBreakdown


class AppendableIndex(SecondaryIndex):
    """Theorem 4: Theorem-2 queries plus O(lg lg n)-I/O appends.

    Parameters
    ----------
    x:
        Initial string (may be empty; the alphabet must still be given).
    sigma:
        Alphabet size; appended characters must lie in ``[0, sigma)``.
    rebuild_factor:
        Rebuild when ``n`` exceeds this multiple of the size at the
        last build (2.0 = classic doubling).
    """

    def __init__(
        self,
        x: Sequence[int],
        sigma: int,
        disk: Disk | None = None,
        branching: int = 8,
        rebuild_factor: float = 2.0,
        block_bits: int = 1024,
        mem_blocks: int = 64,
    ) -> None:
        if rebuild_factor <= 1.0:
            raise InvalidParameterError("rebuild_factor must exceed 1")
        if sigma <= 0:
            raise InvalidParameterError("sigma must be >= 1")
        self._sigma = sigma
        self._branching = branching
        self._rebuild_factor = rebuild_factor
        self._block_bits = block_bits
        self._mem_blocks = mem_blocks
        self._stats = disk.stats if disk is not None else IOStats()
        self._disk = disk if disk is not None else Disk(
            block_bits, mem_blocks, stats=self._stats
        )
        self._x = list(x)
        for ch in self._x:
            if ch < 0 or ch >= sigma:
                raise InvalidParameterError(
                    f"character {ch} outside alphabet [0, {sigma})"
                )
        self.rebuilds = 0
        self._build_structure()

    # ------------------------------------------------------------------
    # (Re)construction
    # ------------------------------------------------------------------

    def _fresh_disk(self) -> Disk:
        """A new device for a rebuild, sharing the I/O counters.

        The latency model (if any) carries over: a rebuild swaps the
        bits, not the device's timing characteristics.
        """
        return Disk(
            self._block_bits,
            self._mem_blocks,
            stats=self._stats,
            latency_s=self._disk.latency_s,
        )

    def _build_structure(self) -> None:
        if not self._x:
            # Defer until the first append provides content.
            self._tree = None
            self._layout = None
            self._chains: dict[int, BlockChain] = {}
            self._char_path: dict[int, list[WNode]] = {}
            self._added: dict[int, int] = {}
            self._built_n = 0
            return
        self._disk = self._fresh_disk()
        self._tree = WeightedTree.build(self._x, self._sigma, self._branching)
        self._mat_levels = self._tree.materialized_levels
        self._layout = TreeLayout(self._tree, self._disk)
        self._chains = {}
        for node in self._tree.iter_nodes():
            if self._is_materialized(node):
                self._chains[node.node_id] = BlockChain.build(
                    self._disk, self._tree.node_positions(node)
                )
        # Per-character pointer array (§4.1): the full root-to-leaf path
        # of the character's last occurrence chunk; its materialized
        # members are the bitmaps an append touches.
        self._char_path = {}
        for ch in range(self._sigma):
            if self._tree.char_count(ch) > 0:
                leaf = self._tree.leaf_for_char_last(ch)
                self._char_path[ch] = self._tree.path_to(leaf)
        self._added = {}
        self._built_n = len(self._x)
        self._post_build()

    def _post_build(self) -> None:
        """Hook for subclasses (Theorem 5 attaches buffers here)."""

    def _is_materialized(self, node: WNode) -> bool:
        return node.is_leaf or node.level in self._mat_levels

    def _needs_rebuild(self) -> bool:
        return len(self._x) >= self._rebuild_factor * max(1, self._built_n)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def append(self, ch: int) -> None:
        """Append ``ch`` at the end of the string (§4.1's append)."""
        if ch < 0 or ch >= self._sigma:
            raise InvalidParameterError(
                f"character {ch} outside alphabet [0, {self._sigma})"
            )
        pos = len(self._x)
        self._x.append(ch)
        if self._tree is None or ch not in self._char_path:
            # No leaf to extend: rebuild (amortized; see module docs).
            self.rebuilds += 1
            self._build_structure()
            return
        self._apply_append(ch, pos)
        if self._needs_rebuild():
            self.rebuilds += 1
            self._build_structure()

    def _apply_append(self, ch: int, pos: int) -> None:
        """Write the new position into each materialized ancestor bitmap."""
        for node in self._char_path[ch]:
            self._added[node.node_id] = self._added.get(node.node_id, 0) + 1
            if self._is_materialized(node):
                self._chains[node.node_id].append(pos)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._x)

    @property
    def sigma(self) -> int:
        return self._sigma

    @property
    def disk(self) -> Disk:
        return self._disk

    @property
    def stats(self) -> IOStats:
        return self._stats

    @property
    def tree(self) -> WeightedTree | None:
        return self._tree

    def space(self) -> SpaceBreakdown:
        payload = sum(c.size_bits for c in self._chains.values())
        chain_dir = sum(c.directory_bits for c in self._chains.values())
        layout_bits = self._layout.size_bits if self._layout is not None else 0
        return SpaceBreakdown(
            payload_bits=payload,
            directory_bits=layout_bits + chain_dir,
        )

    def _node_weight(self, node: WNode) -> int:
        return node.weight + self._added.get(node.node_id, 0)

    def count_range(self, char_lo: int, char_hi: int) -> int:
        """``z`` from canonical-node weights (directory reads only)."""
        self._check_range(char_lo, char_hi)
        if self._tree is None:
            return 0
        canonical, visited = self._tree.canonical_cover(char_lo, char_hi)
        self._layout.touch_nodes(list(visited) + list(canonical))
        return sum(self._node_weight(v) for v in canonical)

    def range_query(self, char_lo: int, char_hi: int) -> RangeResult:
        self._check_range(char_lo, char_hi)
        n = len(self._x)
        if self._tree is None:
            return RangeResult.empty(n)
        z = self.count_range(char_lo, char_hi)
        if z == 0:
            return RangeResult.empty(n)
        if z > n // 2:
            parts: list[list[int]] = []
            if char_lo > 0:
                parts.append(self._query_positions(0, char_lo - 1))
            if char_hi < self._sigma - 1:
                parts.append(self._query_positions(char_hi + 1, self._sigma - 1))
            return RangeResult(
                union_disjoint_sorted(parts), n, complemented=True
            )
        return RangeResult(self._query_positions(char_lo, char_hi), n)

    # ------------------------------------------------------------------
    # Query internals (shared with Theorem 5's subclass)
    # ------------------------------------------------------------------

    def _collect_read_set(
        self, char_lo: int, char_hi: int
    ) -> tuple[list[WNode], list[WNode], list[WNode]]:
        canonical, visited = self._tree.canonical_cover(char_lo, char_hi)
        read_nodes: list[WNode] = []
        directory_nodes: list[WNode] = list(visited) + list(canonical)
        slab_nodes: list[WNode] = []
        for v in canonical:
            if self._is_materialized(v):
                read_nodes.append(v)
            else:
                frontier, skipped = self._tree.materialized_frontier(
                    v, self._is_materialized
                )
                read_nodes.extend(frontier)
                directory_nodes.extend(skipped)
                directory_nodes.extend(frontier)
                slab_nodes.extend(skipped)
        return read_nodes, directory_nodes, slab_nodes

    def _query_positions(self, char_lo: int, char_hi: int) -> list[int]:
        read_nodes, directory_nodes, _ = self._collect_read_set(char_lo, char_hi)
        self._layout.touch_nodes(directory_nodes)
        lists = [
            self._chains[v.node_id].read_positions() for v in read_nodes
        ]
        return union_disjoint_sorted(lists)
