"""The dynamic, buffered compressed bitmap index of §4.2 (Theorem 6).

A standalone structure — "of independent interest" per §1.3 — that
dynamizes the plain compressed bitmap index: it stores, for every key
(character), a gap/gamma-compressed position list, supports point
queries (return the whole list) in ``O(T/B + lg n)`` I/Os, and inserts
and deletes of single positions in amortized ``O(lg(n)/b)`` I/Os.

Layout, following §4.2:

* every key's gap list is cut into blocks of at most ``B`` bits; the
  first code of each block is an *absolute* position, so each block
  decodes independently and codes never straddle blocks;
* a branching-``c`` tree is built over the sequence of blocks (keys in
  ascending order); every internal node carries a ``B``-bit buffer and
  the identifier of the first (key, position) stored below it — "to
  allow fast navigation to a particular bitmap";
* updates are stored in the root buffer (pinned in internal memory);
  when a buffer fills, the operations bound for the busiest child move
  down one level; on reaching a leaf block they are applied by
  re-encoding it (splitting it when the result overflows ``B`` bits).

Implementation invariants that keep concurrent in-flight operations
consistent (motivated in DESIGN.md):

* *frozen routing* — between tree rebuilds, operations are routed by
  the block boundaries captured at build time, so two operations on the
  same ``(key, position)`` always follow the same root-to-leaf path and
  can never overtake one another; blocks created by splits receive
  their content through a per-key chain-directory redirect at
  application time;
* *sequence stamps* — every operation carries a global sequence
  number; batches are applied in stamp order, and point queries replay
  the (suffix of) pending operations over the decoded base in stamp
  order.

Deviation (DESIGN.md substitution 3): block boundaries never straddle
keys, so every key owns at least one block — space ``O(nH0 + sigma B)``
instead of ``O(nH0)``; negligible in the ``sigma << n`` regimes
benchmarked.

Theorem 7 instantiates one of these per materialized level, with "keys"
being the nodes of that level.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ..bits.bitio import BitWriter
from ..bits.ebitmap import encode_gaps, decode_gaps
from ..errors import InvalidParameterError, UpdateError
from ..iomodel.disk import Disk
from ..trees.buffers import NodeBuffer

INSERT = 1
DELETE = 0


class _LeafBlock:
    """One <= B-bit block of a key's gap list."""

    __slots__ = ("key", "block_id", "count", "used_bits", "first_pos", "last_pos")

    def __init__(self, key: int, block_id: int) -> None:
        self.key = key
        self.block_id = block_id
        self.count = 0
        self.used_bits = 0
        self.first_pos = -1
        self.last_pos = -1

    def token(self) -> tuple[int, int]:
        """Routing token: the smallest (key, pos) that may live here."""
        return (self.key, self.first_pos if self.count else -1)


class _TreeNode:
    """Internal node: frozen routing table plus a B-bit buffer."""

    __slots__ = ("route_tokens", "route_children", "buffer")

    def __init__(
        self,
        route_tokens: list[tuple[int, int]],
        route_children: list,
        buffer: NodeBuffer,
    ) -> None:
        self.route_tokens = route_tokens
        self.route_children = route_children
        self.buffer = buffer

    @property
    def token(self) -> tuple[int, int]:
        return self.route_tokens[0]


class BufferedBitmapIndex:
    """Theorem 6: point queries O(T/B + lg n), updates O(lg n / b) amortized."""

    def __init__(
        self,
        disk: Disk,
        num_keys: int,
        initial: Sequence[Sequence[int]] | None = None,
        branching: int = 8,
        rebuild_factor: float = 2.0,
    ) -> None:
        if num_keys <= 0:
            raise InvalidParameterError("num_keys must be >= 1")
        if branching < 2:
            raise InvalidParameterError("branching must be >= 2")
        if rebuild_factor <= 1.0:
            raise InvalidParameterError("rebuild_factor must exceed 1")
        self.disk = disk
        self.num_keys = num_keys
        self.branching = branching
        self._rebuild_factor = rebuild_factor
        self._op_bits = 64 + 2  # (key, pos) record plus op kind
        self._seq = 0
        self.tree_rebuilds = 0
        if initial is None:
            initial = [[] for _ in range(num_keys)]
        if len(initial) != num_keys:
            raise InvalidParameterError("initial lists must cover every key")
        self._chains: list[list[_LeafBlock]] = []
        self._bulk_load(initial)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _new_block(self, key: int) -> _LeafBlock:
        block_id = self.disk.alloc_block() // self.disk.block_bits
        return _LeafBlock(key, block_id)

    def _write_block(self, blk: _LeafBlock, positions: list[int]) -> None:
        """Encode ``positions`` into ``blk`` (must fit) and write it."""
        writer = BitWriter()
        encode_gaps(writer, positions)
        if writer.bit_length > self.disk.block_bits:
            raise UpdateError("block content exceeds B bits")
        B = self.disk.block_bits
        self.disk.write_bytes(blk.block_id * B, writer.getvalue(), writer.bit_length)
        blk.count = len(positions)
        blk.used_bits = writer.bit_length
        blk.first_pos = positions[0] if positions else -1
        blk.last_pos = positions[-1] if positions else -1

    def _read_block(self, blk: _LeafBlock) -> list[int]:
        if blk.count == 0:
            return []
        reader = self.disk.reader(
            blk.block_id * self.disk.block_bits, blk.used_bits
        )
        return decode_gaps(reader, blk.count)

    @staticmethod
    def _greedy_pieces(positions: list[int], block_bits: int) -> list[list[int]]:
        """Split a sorted list into prefixes each fitting one block."""
        pieces: list[list[int]] = []
        start = 0
        while start < len(positions):
            end = start
            bits = 0
            prev = -1
            while end < len(positions):
                gap = positions[end] + 1 if end == start else positions[end] - prev
                need = 2 * gap.bit_length() - 1
                if bits + need > block_bits:
                    break
                bits += need
                prev = positions[end]
                end += 1
            if end == start:
                raise InvalidParameterError(
                    "block size too small for one gamma code; need B >= 2 lg n"
                )
            pieces.append(positions[start:end])
            start = end
        return pieces

    def _bulk_load(self, initial: Sequence[Sequence[int]]) -> None:
        self._chains = []
        self._count = 0
        for key, positions in enumerate(initial):
            positions = list(positions)
            if any(b <= a for a, b in zip(positions, positions[1:])) or (
                positions and positions[0] < 0
            ):
                raise InvalidParameterError(
                    "initial position lists must be strictly increasing"
                )
            chain: list[_LeafBlock] = []
            for piece in self._greedy_pieces(positions, self.disk.block_bits):
                blk = self._new_block(key)
                self._write_block(blk, piece)
                chain.append(blk)
            if not chain:
                chain.append(self._new_block(key))  # every key owns a block
            self._chains.append(chain)
            self._count += len(positions)
        self._built_blocks = self._total_blocks()
        self._build_tree()

    def _build_tree(self) -> None:
        """(Re)build the branching-c buffer tree, freezing routing tokens."""
        level: list = [blk for chain in self._chains for blk in chain]
        tokens: list[tuple[int, int]] = [blk.token() for blk in level]
        while True:
            parents: list = []
            parent_tokens: list[tuple[int, int]] = []
            for i in range(0, len(level), self.branching):
                group = level[i : i + self.branching]
                group_tokens = tokens[i : i + self.branching]
                parents.append(
                    _TreeNode(
                        group_tokens, group, NodeBuffer(self.disk, self._op_bits)
                    )
                )
                parent_tokens.append(group_tokens[0])
            level = parents
            tokens = parent_tokens
            if len(level) == 1:
                break
        self._root: _TreeNode = level[0]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, key: int, pos: int) -> None:
        """Insert ``pos`` into ``key``'s set (idempotent on duplicates)."""
        self._update(key, pos, INSERT)

    def delete(self, key: int, pos: int) -> None:
        """Delete ``pos`` from ``key``'s set (no-op when absent)."""
        self._update(key, pos, DELETE)

    def _update(self, key: int, pos: int, kind: int) -> None:
        if key < 0 or key >= self.num_keys:
            raise InvalidParameterError(f"key {key} outside [0, {self.num_keys})")
        if pos < 0:
            raise InvalidParameterError("positions are non-negative")
        buf = self._root.buffer
        if buf.is_full:
            self._flush(self._root)
        self._seq += 1
        buf.append((key, pos, kind, self._seq), charge=False)  # pinned root
        if self._total_blocks() >= self._rebuild_factor * max(1, self._built_blocks):
            self._rebuild_tree()

    def _route_index(self, node: _TreeNode, key: int, pos: int) -> int:
        idx = bisect.bisect_right(node.route_tokens, (key, pos)) - 1
        return max(0, idx)

    def _flush(self, node: _TreeNode) -> None:
        child_idx, batch = node.buffer.take_for_child(
            lambda op: self._route_index(node, op[0], op[1])
        )
        child = node.route_children[child_idx]
        if isinstance(child, _TreeNode):
            while len(child.buffer) + len(batch) > child.buffer.capacity:
                self._flush(child)
            child.buffer.extend(batch)
        else:
            self._apply_batch(batch)

    def _apply_batch(self, batch: list[tuple]) -> None:
        """Apply operations to their (live) target blocks, stamp order."""
        by_block: dict[int, tuple[_LeafBlock, list[tuple]]] = {}
        for op in sorted(batch, key=lambda t: t[3]):
            blk = self._locate_block(op[0], op[1])
            by_block.setdefault(id(blk), (blk, []))[1].append(op)
        for blk, ops in by_block.values():
            positions = self._read_block(blk)
            present = dict.fromkeys(positions)
            for _, pos, kind, _seq in ops:
                if kind == INSERT:
                    present[pos] = None
                else:
                    present.pop(pos, None)
            self._store_positions(blk, sorted(present))

    def _store_positions(self, blk: _LeafBlock, positions: list[int]) -> None:
        """Write back a block, splitting into chain siblings on overflow."""
        pieces = self._greedy_pieces(positions, self.disk.block_bits) or [[]]
        self._write_block(blk, pieces[0])
        if len(pieces) == 1:
            return
        chain = self._chains[blk.key]
        at = chain.index(blk)
        new_blocks: list[_LeafBlock] = []
        for piece in pieces[1:]:
            nb = self._new_block(blk.key)
            self._write_block(nb, piece)
            new_blocks.append(nb)
        chain[at + 1 : at + 1] = new_blocks

    def _locate_block(self, key: int, pos: int) -> _LeafBlock:
        """The live chain block whose range should hold ``pos``.

        The last *non-empty* block whose first position is <= ``pos``;
        blocks emptied by deletions are skipped (their ``first_pos`` is
        meaningless), falling back to the chain head for positions below
        every stored one.
        """
        chain = self._chains[key]
        best = chain[0]
        for blk in chain:
            if blk.count == 0:
                continue
            if blk.first_pos <= pos:
                best = blk
            else:
                break
        return best

    def _total_blocks(self) -> int:
        return sum(len(c) for c in self._chains)

    def _iter_tree_nodes(self):
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            for child in node.route_children:
                if isinstance(child, _TreeNode):
                    stack.append(child)

    def _rebuild_tree(self) -> None:
        """Drain every buffer, apply in stamp order, rebuild the tree."""
        ops: list[tuple] = []
        for node in self._iter_tree_nodes():
            ops.extend(node.buffer.clear())
        self._apply_batch(ops)
        self._built_blocks = self._total_blocks()
        self._build_tree()
        self.tree_rebuilds += 1

    def flush_all(self) -> None:
        """Force-apply every pending operation (used by tests/benchmarks)."""
        self._rebuild_tree()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def point_query(self, key: int) -> list[int]:
        """The sorted position set of ``key`` — §4.2's point query.

        Reads the key's chain blocks (``O(T/B)``) plus every buffer on
        the root-to-chain paths (``O(T/B + lg n)``), then replays the
        pending operations, in stamp order, over the decoded base.
        """
        if key < 0 or key >= self.num_keys:
            raise InvalidParameterError(f"key {key} outside [0, {self.num_keys})")
        base: list[int] = []
        for blk in self._chains[key]:
            base.extend(self._read_block(blk))
        present = dict.fromkeys(base)
        pending: list[tuple] = []
        frontier: list[_TreeNode] = [self._root]
        root = True
        while frontier:
            next_frontier: list[_TreeNode] = []
            for node in frontier:
                if node.buffer.ops or not root:
                    node.buffer.read(charge=not root)
                pending.extend(op for op in node.buffer.ops if op[0] == key)
                # Visit every child the frozen router can send key-ops
                # to: tokens in [(key, -1), (key, +inf)] plus the child
                # immediately before (ops below the key's first token
                # land there).
                tokens = node.route_tokens
                lo_i = max(0, bisect.bisect_right(tokens, (key, -1)) - 1)
                hi_i = max(0, bisect.bisect_right(tokens, (key, 1 << 62)) - 1)
                for child in node.route_children[lo_i : hi_i + 1]:
                    if isinstance(child, _TreeNode):
                        next_frontier.append(child)
            frontier = next_frontier
            root = False
        for _, pos, kind, _seq in sorted(pending, key=lambda t: t[3]):
            if kind == INSERT:
                present[pos] = None
            else:
                present.pop(pos, None)
        return sorted(present)

    def cardinality(self, key: int) -> int:
        """Exact current cardinality of ``key`` (costs a point query)."""
        return len(self.point_query(key))

    @property
    def pending_ops(self) -> int:
        """Buffered operation count (diagnostics)."""
        return sum(len(node.buffer) for node in self._iter_tree_nodes())

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Leaf blocks + buffer blocks + per-block directory."""
        B = self.disk.block_bits
        blocks = self._total_blocks() * B
        buffers = sum(node.buffer.size_bits for node in self._iter_tree_nodes())
        directory = self._total_blocks() * 4 * 48
        return blocks + buffers + directory

    @property
    def payload_bits(self) -> int:
        """Bits actually used by gap codes (compression numerator)."""
        return sum(b.used_bits for chain in self._chains for b in chain)

    def check_invariants(self) -> None:
        """Validate chain ordering and block fill (for tests)."""
        for key, chain in enumerate(self._chains):
            assert chain, f"key {key} lost its block"
            prev_last = -1
            for blk in chain:
                assert blk.key == key
                assert blk.used_bits <= self.disk.block_bits
                if blk.count:
                    positions = self._read_block(blk)
                    assert positions == sorted(set(positions))
                    assert positions[0] == blk.first_pos
                    assert positions[-1] == blk.last_pos
                    assert positions[0] > prev_last
                    prev_last = positions[-1]
