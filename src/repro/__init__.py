"""Reproduction of Pagh & Rao, "Secondary Indexing in One Dimension:
Beyond B-trees and Bitmap Indexes" (PODS 2009).

The package implements the paper's optimal secondary index (Theorem 2)
together with every substrate, variant, and baseline its analysis
touches, all running on a simulated I/O-model block device with exact
block-transfer accounting.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the measured reproduction of every theorem.

Quickstart::

    from repro import PaghRaoIndex
    from repro.model import Alphabet

    ages = [33, 41, 33, 27, 58, 33, 41]
    alphabet = Alphabet(ages)
    index = PaghRaoIndex(alphabet.encode(ages), alphabet.sigma)
    lo, hi = alphabet.code_range(30, 45)
    print(index.range_query(lo, hi).positions())   # rows with age 30..45
    print(index.stats)                              # block I/Os spent
"""

from .core import (
    ApproximatePaghRaoIndex,
    ApproximateResult,
    AppendableIndex,
    BufferedAppendableIndex,
    BufferedBitmapIndex,
    DeletableIndex,
    DynamicSecondaryIndex,
    PaghRaoIndex,
    RangeResult,
    SecondaryIndex,
    SpaceBreakdown,
    UniformTreeIndex,
)
from .cluster import (
    ClusterEngine,
    InMemorySharedCache,
    SerialExecutor,
    ShardedTable,
    SharedResultCache,
    ThreadedExecutor,
)
from .engine import (
    Advisor,
    CostModel,
    IndexSpec,
    QueryEngine,
    WorkloadStats,
)
from .errors import (
    CodecError,
    InvalidParameterError,
    QueryError,
    ReproError,
    StorageError,
    UpdateError,
)
from .iomodel import Disk, IOStats
from .model.alphabet import Alphabet
from .obs import (
    ManualClock,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
)
from .queries import Table, approximate_factory, default_factory
from .query import (
    And,
    Eq,
    In,
    Not,
    Or,
    PlanReport,
    Pred,
    Range,
)

__version__ = "1.0.0"

__all__ = [
    "Advisor",
    "Alphabet",
    "And",
    "Eq",
    "In",
    "Not",
    "Or",
    "PlanReport",
    "Pred",
    "Range",
    "ApproximatePaghRaoIndex",
    "ApproximateResult",
    "AppendableIndex",
    "BufferedAppendableIndex",
    "BufferedBitmapIndex",
    "ClusterEngine",
    "CodecError",
    "CostModel",
    "DeletableIndex",
    "Disk",
    "DynamicSecondaryIndex",
    "IOStats",
    "InMemorySharedCache",
    "IndexSpec",
    "InvalidParameterError",
    "ManualClock",
    "MetricsRegistry",
    "PaghRaoIndex",
    "QueryEngine",
    "QueryError",
    "RangeResult",
    "ReproError",
    "SecondaryIndex",
    "SerialExecutor",
    "ShardedTable",
    "SharedResultCache",
    "SlowQueryLog",
    "SpaceBreakdown",
    "StorageError",
    "Table",
    "ThreadedExecutor",
    "Tracer",
    "UniformTreeIndex",
    "UpdateError",
    "WorkloadStats",
    "approximate_factory",
    "default_factory",
]
