"""Observability: tracing, metrics, slow-query log, typed stats.

The cross-cutting layer the serving stack reports into.  See
``README.md`` in this package for the span model, the metric names
each component emits, and the enable/disable cost contract.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .slowlog import SlowQuery, SlowQueryLog
from .stats import (
    CacheTierStats,
    ColumnStats,
    EngineStats,
    FrontEndStats,
    ReplicaSetStats,
    TableStats,
)
from .tracer import ManualClock, Span, Trace, Tracer

__all__ = [
    "CacheTierStats",
    "ColumnStats",
    "Counter",
    "EngineStats",
    "FrontEndStats",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "ReplicaSetStats",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "TableStats",
    "Trace",
    "Tracer",
]
