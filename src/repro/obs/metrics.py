"""A process-local metrics registry: counters, gauges, histograms.

The stack's components (engine, cluster, executors, caches, the
simulated :class:`~repro.iomodel.disk.Disk`) report into one
:class:`MetricsRegistry` through hooks that are plain ``None`` checks
— no registry attached means no work at all, so serving hot paths pay
nothing when metrics are off.

Instruments are deliberately minimal and allocation-light:

* :class:`Counter` — a monotonically increasing float/int.
* :class:`Gauge` — a last-written value.
* :class:`Histogram` — count/total/min/max plus a *bounded reservoir*
  (a ring of the most recent observations) for percentiles; memory is
  O(reservoir) no matter how many samples flow through.

Everything serializes to plain JSON types via ``to_dict()`` so a
metrics snapshot embeds directly in ``stats()`` outputs and bench
reports.
"""

from __future__ import annotations

from collections import deque

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value; ``set`` overwrites."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"name": self.name, "value": self.value}


class Histogram:
    """Running count/total/min/max + a bounded recent-sample reservoir.

    The reservoir is a plain ring of the most recent observations —
    deterministic (no sampling randomness), bounded memory, and good
    enough for the "what does the latency tail look like right now"
    question ``stats()`` answers.  ``count``/``total``/``min``/``max``
    cover the whole stream regardless of reservoir size.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples")

    def __init__(self, name: str, reservoir: int = 256) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.samples: deque = deque(maxlen=reservoir)

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the *reservoir* samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "reservoir": len(self.samples),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    Component hooks hold a reference to the registry (or ``None``) and
    call the convenience verbs::

        if self.metrics is not None:
            self.metrics.inc("cache.shared.hits")

    Names are dotted strings; the registry neither parses nor
    validates them — they are labels, chosen by the reporting site.
    See ``obs/README.md`` for the names the stack emits.
    """

    def __init__(self, reservoir: int = 256) -> None:
        self.reservoir = reservoir
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(
                name, reservoir=self.reservoir
            )
        return h

    # -- convenience verbs ---------------------------------------------

    def inc(self, name: str, n=1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        self.histogram(name).observe(value)

    # -- snapshot ------------------------------------------------------

    def to_dict(self) -> dict:
        """One JSON-serializable snapshot of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.to_dict()
                for name, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests; epoch boundaries)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
