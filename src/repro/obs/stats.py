"""Typed, JSON-serializable ``stats()`` snapshots.

``QueryEngine.stats()``, ``ClusterEngine.stats()``, ``Table.stats()``
and ``ShardedTable.stats()`` each answer with one frozen dataclass
from this module (the cluster adds its own ``ClusterStats`` next to
``GatherStats`` to avoid an import cycle).  Every field is either a
plain JSON type or something with a ``to_json``/``to_dict`` of its
own, so ``json.dumps(snapshot.to_dict())`` always works — the
fragmented counters the stack grew (``IOStats``/``Snapshot``,
``GatherStats``, ``op_counts``, cache hit ratios) become views of one
object.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..iomodel.stats import Snapshot

__all__ = [
    "CacheTierStats",
    "ColumnStats",
    "EngineStats",
    "FrontEndStats",
    "ReplicaSetStats",
    "TableStats",
]


@dataclass(frozen=True)
class CacheTierStats:
    """Hit/miss accounting of one cache tier (engine LRU, shared)."""

    tier: str
    hits: int
    misses: int
    size: int
    capacity: int
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "size": self.size,
            "capacity": self.capacity,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class ColumnStats:
    """One engine column: backend verdict + size + update version."""

    name: str
    backend: str
    family: str
    n: int
    sigma: int
    version: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "backend": self.backend,
            "family": self.family,
            "n": self.n,
            "sigma": self.sigma,
            "version": self.version,
        }


@dataclass(frozen=True)
class EngineStats:
    """One ``QueryEngine.stats()`` snapshot."""

    columns: tuple[ColumnStats, ...]
    cache: CacheTierStats
    io: Snapshot
    metrics: dict | None = None
    slow_queries: int = 0

    def to_dict(self) -> dict:
        return {
            "columns": [c.to_dict() for c in self.columns],
            "cache": self.cache.to_dict(),
            "io": self.io.to_json(),
            "metrics": self.metrics,
            "slow_queries": self.slow_queries,
        }


@dataclass(frozen=True)
class FrontEndStats:
    """One ``FrontEnd.stats()`` snapshot: admission + coalescing counters.

    ``requests`` counts every call that reached the front end;
    ``admitted`` the ones that acquired an execution slot (coalesced
    followers are *not* admitted — they ride the leader's slot);
    ``coalesced`` the follower count; ``shed`` rejections by the
    admission gate; ``timeouts`` admitted requests that missed their
    deadline; ``cancelled`` requests abandoned by their caller before
    completing.  ``inflight`` / ``inflight_peak`` describe the
    execution queue at snapshot time and its high-water mark.
    """

    requests: int
    admitted: int
    completed: int
    coalesced: int
    shed: int
    timeouts: int
    cancelled: int
    errors: int
    inflight: int
    inflight_peak: int
    max_inflight: int

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "completed": self.completed,
            "coalesced": self.coalesced,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "inflight": self.inflight,
            "inflight_peak": self.inflight_peak,
            "max_inflight": self.max_inflight,
        }


@dataclass(frozen=True)
class ReplicaSetStats:
    """One ``ReplicaSet.stats()`` snapshot.

    ``resident`` lists the shard uids currently replicated;
    ``hits``/``stale``/``absent`` classify fetch consults (a stale
    consult found the uid resident but version-fenced behind the
    primary — the caller fell back); ``builds``/``retires``/
    ``refreshes`` count membership churn.
    """

    capacity: int
    resident: tuple[int, ...]
    hits: int
    stale: int
    absent: int
    builds: int
    retires: int
    refreshes: int
    deltas: int

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "resident": list(self.resident),
            "hits": self.hits,
            "stale": self.stale,
            "absent": self.absent,
            "builds": self.builds,
            "retires": self.retires,
            "refreshes": self.refreshes,
            "deltas": self.deltas,
        }


@dataclass(frozen=True)
class TableStats:
    """One ``Table.stats()`` snapshot: row count + the serving layer's.

    Exactly one serving-layer slot is filled: ``engine`` for the
    default engine build, ``io`` (summed per-index disk transfers)
    for the legacy factory build, and ``cluster`` (a
    :class:`repro.cluster.engine.ClusterStats`, typed loosely here to
    avoid the import cycle) for :class:`ShardedTable`.
    """

    num_rows: int
    engine: EngineStats | None = None
    io: Snapshot | None = None
    cluster: object | None = None

    def to_dict(self) -> dict:
        return {
            "num_rows": self.num_rows,
            "engine": self.engine.to_dict() if self.engine else None,
            "io": self.io.to_json() if self.io is not None else None,
            "cluster": (
                self.cluster.to_dict() if self.cluster is not None else None
            ),
        }
