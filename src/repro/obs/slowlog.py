"""The slow-query log: a bounded ring of offending queries.

Queries whose elapsed time crosses ``threshold_s`` are captured with
their full trace (when tracing was on) and their
:class:`~repro.query.planner.PlanReport` (produced lazily — the report
is only built for queries that are actually slow, so fast queries pay
one float comparison).  The ring is bounded (``capacity``), newest
last, and everything in it is already plain JSON types.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

__all__ = ["SlowQuery", "SlowQueryLog"]


@dataclass(frozen=True)
class SlowQuery:
    """One captured slow query."""

    op: str
    elapsed_s: float
    threshold_s: float
    trace: dict | None = None
    report: dict | None = None

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "elapsed_s": self.elapsed_s,
            "threshold_s": self.threshold_s,
            "trace": self.trace,
            "report": self.report,
        }


class SlowQueryLog:
    """Threshold + ring buffer; attach one to an engine or cluster.

    ``observe`` is the single entry point the serving layers call at
    operation exit.  ``report_fn`` is a zero-argument callable built
    by the caller (typically closing over the predicate) and invoked
    *only* when the query is slow; any exception it raises is
    swallowed — slow-logging must never fail the query it describes.
    """

    def __init__(self, threshold_s: float, capacity: int = 64) -> None:
        self.threshold_s = threshold_s
        self._ring: deque[SlowQuery] = deque(maxlen=capacity)

    def observe(
        self,
        op: str,
        elapsed_s: float,
        trace=None,
        report_fn: Callable[[], object] | None = None,
    ) -> SlowQuery | None:
        """Record the query if it crossed the threshold.

        ``trace`` may be a :class:`~repro.obs.tracer.Trace`, an
        already-serialized dict, or ``None``.  Returns the captured
        record, or ``None`` for fast queries.
        """
        if elapsed_s < self.threshold_s:
            return None
        trace_dict: dict | None = None
        if trace is not None:
            trace_dict = trace if isinstance(trace, dict) else trace.to_dict()
        report_dict: dict | None = None
        if report_fn is not None:
            try:
                report = report_fn()
                if report is not None:
                    report_dict = (
                        report
                        if isinstance(report, dict)
                        else report.to_dict()
                    )
            except Exception:
                report_dict = None
        record = SlowQuery(
            op=op,
            elapsed_s=elapsed_s,
            threshold_s=self.threshold_s,
            trace=trace_dict,
            report=report_dict,
        )
        self._ring.append(record)
        return record

    def records(self) -> list[SlowQuery]:
        """The retained slow queries, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def to_dict(self) -> list[dict]:
        return [record.to_dict() for record in self._ring]
