"""Per-query tracing: nested, timestamped spans across the stack.

One query becomes one :class:`Trace` — a tree of :class:`Span`\\ s
(``plan``, ``leaf_fetch``, ``cache_lookup``, ``scatter``,
``worker_query``/``worker_fold``, ``gather_merge``) rooted at the
operation span.  Spans carry a free-form ``tags`` dict (backend
verdicts, cache hit/miss, bits read), serialize to plain nested
dicts, and worker-side spans — built inside a resident process and
shipped back piggybacked on the existing reply tuples — are
:meth:`Trace.graft`\\ ed under the coordinator's ``scatter`` span at
gather time, so one stitched tree tells the whole story.

The design constraints, in order:

* **Zero cost disabled.**  A ``Tracer(enabled=False)`` (or no tracer
  at all) must cost the serving hot paths nothing beyond one
  attribute check — the engine/cluster fast paths guard on it before
  touching any of this module.
* **Deterministic under test.**  The clock is injected
  (``time.monotonic`` by default); :class:`ManualClock` makes span
  durations and slow-query thresholds exact in tests.
* **No leakage.**  Grafting happens only at delivery points inside a
  live trace; spans arriving after :meth:`Tracer.finish` (abandoned
  pipelined replies from an early-closed streaming gather) are
  dropped and counted in :attr:`Tracer.dropped_spans`, never attached
  to a later query's trace.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["Span", "Trace", "Tracer", "ManualClock"]

#: Process-global trace-id source.  Ids are strings ("t0", "t1", ...)
#: so they pickle through the worker pipe protocol unchanged and tag
#: worker spans unambiguously even across tracer instances.
_trace_ids = itertools.count()


class ManualClock:
    """An injectable monotonic clock for deterministic tests.

    ``clock()`` returns the current reading; ``advance(dt)`` moves it
    forward.  Handing one to :class:`Tracer` (and, through it, to the
    engines' ``_observed`` timing) makes span durations and slow-query
    elapsed times exact instead of wall-clock noise.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class Span:
    """One timed phase of a query: name, window, tags, children."""

    __slots__ = ("name", "t0", "t1", "tags", "children")

    def __init__(
        self,
        name: str,
        t0: float = 0.0,
        t1: float | None = None,
        tags: dict | None = None,
    ) -> None:
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.tags: dict = tags if tags is not None else {}
        self.children: list[Span] = []

    @property
    def duration_s(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """Plain nested dict: picklable, JSON-serializable, graftable."""
        return {
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "tags": dict(self.tags),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            data["name"],
            data.get("t0", 0.0),
            data.get("t1"),
            dict(data.get("tags", {})),
        )
        span.children = [
            cls.from_dict(c) for c in data.get("children", ())
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s:.6f}s, "
            f"tags={self.tags}, children={len(self.children)})"
        )


class Trace:
    """One query's span tree plus the nesting state that builds it."""

    __slots__ = ("trace_id", "tracer", "root", "finished", "_stack")

    def __init__(self, trace_id: str, tracer: "Tracer", root: Span) -> None:
        self.trace_id = trace_id
        self.tracer = tracer
        self.root = root
        self.finished = False
        self._stack: list[Span] = [root]

    # -- building ------------------------------------------------------

    @contextmanager
    def span(self, name: str, **tags):
        """Open a child span under the innermost open span.

        Yields the :class:`Span` so the body can add tags discovered
        mid-flight (bits read, cache verdicts).  Timing comes from the
        tracer's injected clock.
        """
        clock = self.tracer.clock
        span = Span(name, t0=clock(), tags=tags)
        parent = self._stack[-1]
        parent.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.t1 = clock()
            self._stack.pop()

    def event(self, name: str, **tags) -> Span:
        """A zero-duration marker span (e.g. a delta-batch flush)."""
        now = self.tracer.clock()
        span = Span(name, t0=now, t1=now, tags=tags)
        self._stack[-1].children.append(span)
        return span

    def graft(
        self, span_dicts, parent: Span | None = None
    ) -> list[Span]:
        """Attach serialized spans (worker replies) under ``parent``.

        ``span_dicts`` is a list of :meth:`Span.to_dict` trees —
        exactly what resident workers piggyback on their reply tuples.
        After the trace is finished (an early-closed streaming gather
        drained its abandoned replies), the spans are dropped and
        counted in :attr:`Tracer.dropped_spans` instead: stale replies
        must never stitch into a later query's trace.
        """
        spans = [Span.from_dict(d) for d in span_dicts]
        if self.finished:
            self.tracer.dropped_spans += len(spans)
            return []
        target = parent if parent is not None else self._stack[-1]
        target.children.extend(spans)
        return spans

    # -- reading -------------------------------------------------------

    def spans(self) -> Iterator[Span]:
        """Every span in the trace, pre-order."""
        return self.root.walk()

    def find(self, name: str) -> list[Span]:
        """All spans with the given name."""
        return [s for s in self.spans() if s.name == name]

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "finished": self.finished,
            "root": self.root.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = sum(1 for _ in self.spans())
        return f"Trace({self.trace_id!r}, {n} span(s))"


class Tracer:
    """Produces, finishes, and retains per-query traces.

    ``enabled=False`` makes :meth:`begin` answer ``None`` — and the
    serving layers guard their instrumentation on exactly that, so a
    disabled tracer costs one attribute read on the hot path.  The
    ``clock`` is injected for deterministic tests and shared with the
    engines' latency measurement.  Finished traces are kept in a
    bounded ring (``keep``), newest last.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] | None = None,
        keep: int = 64,
    ) -> None:
        self.enabled = enabled
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic
        )
        self.traces: deque[Trace] = deque(maxlen=keep)
        #: Spans that arrived for an already-finished trace (abandoned
        #: streaming-gather replies) — dropped, never misattached.
        self.dropped_spans = 0

    def begin(self, name: str, **tags) -> Trace | None:
        """Start a trace rooted at an operation span, or None if off."""
        if not self.enabled:
            return None
        trace_id = f"t{next(_trace_ids)}"
        root = Span(name, t0=self.clock(), tags=tags)
        root.tags["trace_id"] = trace_id
        return Trace(trace_id, self, root)

    def finish(self, trace: Trace) -> None:
        """Close a trace's root span and retain it in the ring."""
        if trace.finished:
            return
        trace.root.t1 = self.clock()
        trace.finished = True
        self.traces.append(trace)

    def last(self) -> Trace | None:
        """The most recently finished trace, if any."""
        return self.traces[-1] if self.traces else None
