"""Universal hash families.

Section 3 needs, for each level ``j``, a function ``g_j`` drawn from a
universal family mapping the high bits of a position into
``[2^(2^j)]``.  We provide the classic multiply-shift family (universal
for power-of-two ranges, which is all §3 uses) and an affine family over
a prime field for callers that need a non-power-of-two range.
"""

from __future__ import annotations

import random

from ..errors import InvalidParameterError

_WORD_BITS = 64
_MERSENNE_P = (1 << 61) - 1  # a Mersenne prime comfortably above any position


class MultiplyShiftHash:
    """``h(x) = ((a * x) mod 2^64) >> (64 - out_bits)`` with odd ``a``.

    Dietzfelbinger et al.'s multiply-shift scheme: 2-approximately
    universal into ``[2^out_bits]``, and fast — one multiply and one
    shift per evaluation.
    """

    __slots__ = ("a", "out_bits")

    def __init__(self, a: int, out_bits: int) -> None:
        if out_bits < 0 or out_bits > _WORD_BITS:
            raise InvalidParameterError("out_bits must be in [0, 64]")
        if a % 2 == 0:
            raise InvalidParameterError("multiplier must be odd")
        self.a = a & ((1 << _WORD_BITS) - 1)
        self.out_bits = out_bits

    @classmethod
    def sample(cls, rng: random.Random, out_bits: int) -> "MultiplyShiftHash":
        """Draw a random member of the family."""
        a = rng.getrandbits(_WORD_BITS) | 1
        return cls(a, out_bits)

    @property
    def range_size(self) -> int:
        return 1 << self.out_bits

    def __call__(self, x: int) -> int:
        if self.out_bits == 0:
            return 0
        return ((self.a * x) & ((1 << _WORD_BITS) - 1)) >> (
            _WORD_BITS - self.out_bits
        )


class AffineHash:
    """``h(x) = (((a x + b) mod p) mod m)`` — Carter-Wegman universal.

    Used where the range ``m`` is not a power of two.
    """

    __slots__ = ("a", "b", "m")

    def __init__(self, a: int, b: int, m: int) -> None:
        if m <= 0:
            raise InvalidParameterError("range must be positive")
        if not 1 <= a < _MERSENNE_P:
            raise InvalidParameterError("need 1 <= a < p")
        if not 0 <= b < _MERSENNE_P:
            raise InvalidParameterError("need 0 <= b < p")
        self.a = a
        self.b = b
        self.m = m

    @classmethod
    def sample(cls, rng: random.Random, m: int) -> "AffineHash":
        """Draw a random member of the family."""
        return cls(rng.randrange(1, _MERSENNE_P), rng.randrange(_MERSENNE_P), m)

    @property
    def range_size(self) -> int:
        return self.m

    def __call__(self, x: int) -> int:
        return ((self.a * x + self.b) % _MERSENNE_P) % self.m
