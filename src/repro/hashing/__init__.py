"""Universal hashing, including the XOR-fold family of §3."""

from .universal import AffineHash, MultiplyShiftHash
from .xorfold import XorFoldHash

__all__ = ["AffineHash", "MultiplyShiftHash", "XorFoldHash"]
