"""The XOR-fold hash family of §3, with cheap preimage enumeration.

Section 3 describes "a well-known and particularly attractive universal
family": split ``i`` into ``(i1, i2)`` where ``i2`` is the ``2^j`` least
significant bits, pick ``g_j`` from a universal family into
``[2^(2^j)]``, and let ``h_j(i1, i2) = g_j(i1) XOR i2``.

Two properties make this family the right tool for approximate range
queries:

* it is universal, so the false-positive argument of §3 goes through;
* the preimage of any hash value ``s`` is ``{(i1, s XOR g_j(i1))}`` —
  one candidate per value of ``i1`` — so the (large) approximate answer
  can be *generated* without further I/O, and membership of a given
  position is testable in O(1).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import InvalidParameterError
from .universal import MultiplyShiftHash


class XorFoldHash:
    """One member ``h(i) = g(i >> fold_bits) XOR (i mod 2^fold_bits)``.

    ``fold_bits`` is the paper's ``2^j``: the output range is
    ``[2^fold_bits]``, and ``g`` maps the remaining high bits into the
    same range.
    """

    __slots__ = ("fold_bits", "g")

    def __init__(self, fold_bits: int, g: MultiplyShiftHash) -> None:
        if fold_bits < 0:
            raise InvalidParameterError("fold_bits must be >= 0")
        if g.out_bits != fold_bits:
            raise InvalidParameterError(
                "inner hash must map into the same power-of-two range"
            )
        self.fold_bits = fold_bits
        self.g = g

    @classmethod
    def sample(cls, rng: random.Random, fold_bits: int) -> "XorFoldHash":
        """Draw a random member with output range ``[2^fold_bits]``."""
        return cls(fold_bits, MultiplyShiftHash.sample(rng, fold_bits))

    @property
    def range_size(self) -> int:
        """Size of the hash range, ``2^fold_bits``."""
        return 1 << self.fold_bits

    def __call__(self, i: int) -> int:
        fold = self.fold_bits
        low = i & ((1 << fold) - 1)
        return self.g(i >> fold) ^ low

    # ------------------------------------------------------------------
    # Preimages
    # ------------------------------------------------------------------

    def high_parts(self, universe: int) -> int:
        """Number of distinct ``i1`` values for positions in ``[0, universe)``."""
        if universe <= 0:
            return 0
        return ((universe - 1) >> self.fold_bits) + 1

    def preimage_one(self, s: int, universe: int) -> Iterator[int]:
        """All ``i`` in ``[0, universe)`` with ``h(i) == s``, increasing."""
        fold = self.fold_bits
        for i1 in range(self.high_parts(universe)):
            i = (i1 << fold) | (s ^ self.g(i1))
            if i < universe:
                yield i

    def preimage(self, hashed: set[int], universe: int) -> Iterator[int]:
        """All ``i`` in ``[0, universe)`` whose hash lies in ``hashed``.

        Yields positions in increasing order: for each ``i1`` block the
        candidates are ``{(i1 << f) | (s XOR g(i1))}``, which are sorted
        within the block, and blocks come in increasing ``i1``.
        """
        if not hashed:
            return
        fold = self.fold_bits
        g = self.g
        for i1 in range(self.high_parts(universe)):
            mask = g(i1)
            block = sorted((i1 << fold) | (s ^ mask) for s in hashed)
            for i in block:
                if i < universe:
                    yield i

    def preimage_size(self, hashed_count: int, universe: int) -> int:
        """Upper bound on the number of candidates :meth:`preimage` yields."""
        return hashed_count * self.high_parts(universe)
