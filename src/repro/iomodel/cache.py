"""An LRU cache of disk blocks modelling the internal memory ``M``.

The paper assumes an internal memory of ``M`` bits, i.e. ``M / B``
blocks.  A block access that hits the cache is free (it is an internal
memory access, not an I/O); a miss costs one block transfer and evicts
the least recently used resident block.

The cache stores only block *identities* — the simulated disk keeps the
actual bytes — because the cost model cares about which blocks are
resident, not about duplicating their content.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import InvalidParameterError


class LRUBlockCache:
    """Tracks which block ids are resident in internal memory.

    Parameters
    ----------
    capacity:
        Number of blocks that fit in internal memory (``M / B``).  A
        capacity of 0 disables caching entirely: every access is a miss,
        which models the worst case where queries find nothing resident.
    """

    __slots__ = ("capacity", "_resident", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise InvalidParameterError("cache capacity must be >= 0")
        self.capacity = capacity
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._resident

    def access(self, block_id: int) -> bool:
        """Record an access to ``block_id``.

        Returns ``True`` on a hit (no I/O needed) and ``False`` on a
        miss (the caller must charge one block transfer).  On a miss the
        block becomes resident, evicting the LRU block if necessary.
        """
        if self.capacity == 0:
            self.misses += 1
            return False
        resident = self._resident
        if block_id in resident:
            resident.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        resident[block_id] = None
        if len(resident) > self.capacity:
            resident.popitem(last=False)
        return False

    def evict(self, block_id: int) -> None:
        """Drop ``block_id`` from the cache if present."""
        self._resident.pop(block_id, None)

    def clear(self) -> None:
        """Empty the cache (e.g. to run a query cold)."""
        self._resident.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without evicting anything."""
        self.hits = 0
        self.misses = 0
