"""A simulated block device for the I/O model.

This is the substrate on which every index in this package stores its
bits.  The device is a flat, bit-addressed, append-allocated store
divided into blocks of ``block_bits`` bits (the paper's ``B``, measured
in bits — see §1.4).  Every read or write touches a range of blocks;
each touched block that is not resident in the internal-memory LRU cache
(capacity ``mem_blocks`` blocks, i.e. ``M = mem_blocks * B`` bits) costs
one block transfer, counted in :class:`repro.iomodel.stats.IOStats`.

The data is *really stored*: reads hand back the actual bytes that were
written, through a :class:`repro.bits.bitio.BitReader`.  This keeps the
accounting honest — a structure cannot claim to answer a query without
reading the blocks its answer lives in.

Design notes
------------
* Allocations are byte-aligned (a waste of at most 7 bits per extent)
  so that bulk writes are plain ``bytearray`` splices.  Block-aligned
  allocation is available for structures that manage whole blocks, such
  as the buffered trees of §4.
* Writes are write-allocate: touching a non-resident block costs one
  transfer and makes it resident; further reads *and writes* to a
  resident block are free (the I/O model edits blocks in internal
  memory).  Structures that the paper allows to keep a block pinned in
  internal memory (e.g. the root buffer of §4.1.1) simply keep that
  state in Python objects and never write it to disk, matching the
  paper's accounting.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass

from ..bits.bitio import BitReader
from ..errors import InvalidParameterError, StorageError
from .cache import LRUBlockCache
from .stats import IOStats

DEFAULT_BLOCK_BITS = 1024
DEFAULT_MEM_BLOCKS = 64


@dataclass(frozen=True)
class Extent:
    """A contiguous range of bits on the device."""

    offset: int
    nbits: int

    @property
    def end(self) -> int:
        return self.offset + self.nbits


@dataclass
class DiskState:
    """The picklable half of a :class:`Disk`: geometry plus content.

    A disk separates cleanly into *state* — what must cross a process
    boundary to reconstruct the device — and *runtime* — the LRU
    residency set, the I/O counters, and the latency clock, which are
    local to whichever process is serving.  ``snapshot_state()``
    captures the former; :meth:`Disk.from_state` rehydrates a runtime
    handle around it (cold cache, fresh counters) in the receiving
    process.
    """

    block_bits: int
    mem_blocks: int
    data: bytes
    alloc_bits: int
    latency_s: float = 0.0

    #: Flat-layout header: geometry ints, the latency double, and the
    #: page payload's byte length, immediately followed by the raw
    #: pages.  This is the shared-memory wire form — a segment holds
    #: ``pack()`` output and ``unpack`` rehydrates without copying the
    #: page bytes (the ``data`` field is a memoryview into the buffer,
    #: which ``Disk.from_state`` copies into its own bytearray).
    _HEADER = struct.Struct("<qqqdq")

    def pack(self) -> bytes:
        """Serialize to the flat header + raw pages layout."""
        return self._HEADER.pack(
            self.block_bits,
            self.mem_blocks,
            self.alloc_bits,
            self.latency_s,
            len(self.data),
        ) + bytes(self.data)

    @classmethod
    def unpack(cls, buf) -> "DiskState":
        """Rehydrate from :meth:`pack` output (bytes or a buffer).

        The returned state's ``data`` is a zero-copy view into
        ``buf``; hold the underlying buffer (e.g. the attached
        shared-memory segment) alive until the state is consumed.
        """
        view = memoryview(buf)
        header = cls._HEADER
        if len(view) < header.size:
            raise StorageError("packed DiskState shorter than its header")
        block_bits, mem_blocks, alloc_bits, latency_s, nbytes = header.unpack(
            view[: header.size]
        )
        if len(view) < header.size + nbytes:
            raise StorageError("packed DiskState truncated")
        return cls(
            block_bits=block_bits,
            mem_blocks=mem_blocks,
            data=view[header.size : header.size + nbytes],
            alloc_bits=alloc_bits,
            latency_s=latency_s,
        )


class Disk:
    """Bit-addressed block storage with exact I/O accounting.

    Parameters
    ----------
    block_bits:
        Block size ``B`` in bits; must be a positive multiple of 8.
    mem_blocks:
        Internal memory size in blocks (``M / B``).  0 disables caching.
    stats:
        Optional shared :class:`IOStats`; a fresh one is created if
        omitted.
    latency_s:
        Optional per-transfer latency model: every block transfer
        (cache miss) sleeps this many seconds, *after* the counters
        are updated and outside any lock.  The sleep releases the GIL,
        so executors that overlap shard fetches — threads, worker
        processes, the prefetching gather — realize genuine overlap
        against the simulated device instead of serializing behind
        pure-Python bookkeeping.  0.0 (the default) disables the model
        and preserves the historical instant-transfer behavior.
    """

    def __init__(
        self,
        block_bits: int = DEFAULT_BLOCK_BITS,
        mem_blocks: int = DEFAULT_MEM_BLOCKS,
        stats: IOStats | None = None,
        latency_s: float = 0.0,
    ) -> None:
        if block_bits <= 0 or block_bits % 8 != 0:
            raise InvalidParameterError("block_bits must be a positive multiple of 8")
        if latency_s < 0:
            raise InvalidParameterError("latency_s must be >= 0")
        self.block_bits = block_bits
        self.stats = stats if stats is not None else IOStats()
        self.cache = LRUBlockCache(mem_blocks)
        self.latency_s = latency_s
        #: Optional :class:`repro.obs.MetricsRegistry` hook, set by the
        #: owner (e.g. ``QueryEngine.add_column`` when the engine has a
        #: registry attached).  ``None`` — the default — costs one
        #: attribute check per transfer batch and nothing else.
        self.metrics = None
        self._data = bytearray()
        self._alloc_bits = 0

    # ------------------------------------------------------------------
    # State snapshot / rehydration (the picklable half)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> DiskState:
        """Capture the picklable device state (geometry + content).

        Runtime artifacts — cache residency, counters — are *not*
        part of the state: a rehydrated disk starts cold, exactly like
        a remote worker that just received the bits.
        """
        return DiskState(
            block_bits=self.block_bits,
            mem_blocks=self.cache.capacity,
            data=bytes(self._data),
            alloc_bits=self._alloc_bits,
            latency_s=self.latency_s,
        )

    @classmethod
    def from_state(
        cls,
        state: DiskState,
        stats: IOStats | None = None,
        copy: bool = True,
    ) -> "Disk":
        """Rebuild a runtime handle around a shipped :class:`DiskState`.

        The returned disk serves the same bits at the same offsets;
        its cache is cold and its counters start at zero (or share the
        given ``stats``), so the receiving process accounts its own
        I/O from scratch.

        With ``copy=False`` the disk adopts ``state.data`` as its
        backing buffer *without materializing it*: when the state was
        unpacked from an ``mmap``-ed snapshot section, reads page
        bytes in on demand through the OS while the simulated-device
        accounting stays exactly as before.  The first mutation
        (``alloc`` / ``write_bytes`` / ``write_bits``) copies the
        buffer into a private ``bytearray``, so a restored index that
        is later updated behaves identically to a copied one.
        """
        disk = cls(
            block_bits=state.block_bits,
            mem_blocks=state.mem_blocks,
            stats=stats,
            latency_s=state.latency_s,
        )
        if copy:
            disk._data = bytearray(state.data)
        elif isinstance(state.data, memoryview):
            disk._data = state.data
        else:
            disk._data = memoryview(state.data)
        disk._alloc_bits = state.alloc_bits
        return disk

    def _materialize(self) -> None:
        # Copy-on-write for lazily adopted (mmap-backed) buffers: every
        # mutator lands here first, so reads stay zero-copy until the
        # disk actually changes.
        if not isinstance(self._data, bytearray):
            self._data = bytearray(self._data)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Total bits allocated so far."""
        return self._alloc_bits

    @property
    def size_blocks(self) -> int:
        """Number of blocks spanned by the allocated region."""
        return (self._alloc_bits + self.block_bits - 1) // self.block_bits

    def alloc(self, nbits: int, *, align_block: bool = False) -> int:
        """Reserve ``nbits`` bits and return the starting bit offset.

        Allocations are byte-aligned; with ``align_block=True`` the
        extent starts on a block boundary (used by structures that
        manage whole blocks, e.g. buffers and block chains).
        """
        if nbits < 0:
            raise InvalidParameterError("cannot allocate a negative number of bits")
        self._materialize()
        if align_block:
            rem = self._alloc_bits % self.block_bits
            if rem:
                self._alloc_bits += self.block_bits - rem
        else:
            rem = self._alloc_bits % 8
            if rem:
                self._alloc_bits += 8 - rem
        offset = self._alloc_bits
        self._alloc_bits += nbits
        needed = (self._alloc_bits + 7) // 8
        if needed > len(self._data):
            self._data.extend(b"\x00" * (needed - len(self._data)))
        return offset

    def alloc_block(self) -> int:
        """Reserve one whole block; returns its starting bit offset."""
        return self.alloc(self.block_bits, align_block=True)

    def block_of(self, bit_offset: int) -> int:
        """The block id containing ``bit_offset``."""
        return bit_offset // self.block_bits

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _touch(self, first_block: int, last_block: int, *, write: bool) -> None:
        # Cache-resident blocks absorb both reads and writes: the I/O
        # model edits an in-memory block for free and pays one transfer
        # to bring it in / flush it out.  We charge on the miss (write-
        # allocate); with mem_blocks=0 every access is a transfer.
        stats = self.stats
        cache = self.cache
        misses = 0
        if write:
            for bid in range(first_block, last_block + 1):
                if not cache.access(bid):
                    stats.writes += 1
                    misses += 1
        else:
            for bid in range(first_block, last_block + 1):
                if not cache.access(bid):
                    stats.reads += 1
                    misses += 1
        if misses:
            if self.metrics is not None:
                self.metrics.inc(
                    "io.write_transfers" if write else "io.read_transfers",
                    misses,
                )
            if self.latency_s:
                # The latency model: one sleep per transfer, taken
                # after the accounting and outside any lock, so
                # concurrent shard runtimes overlap their transfer
                # waits exactly as real devices would (time.sleep
                # releases the GIL).
                time.sleep(misses * self.latency_s)

    def touch_range(self, offset: int, nbits: int, *, write: bool = False) -> None:
        """Charge the I/O cost of touching ``[offset, offset+nbits)``.

        Used for directory structures whose cost must be counted even
        when the caller keeps a decoded copy (e.g. tree-node records
        visited during a root-to-leaf descent).
        """
        if nbits <= 0:
            return
        B = self.block_bits
        self._touch(offset // B, (offset + nbits - 1) // B, write=write)
        if write:
            self.stats.bits_written += nbits
        else:
            self.stats.bits_read += nbits

    def touch_block(self, block_id: int, *, write: bool = False) -> None:
        """Charge the cost of touching one whole block by id."""
        self._touch(block_id, block_id, write=write)
        if write:
            self.stats.bits_written += self.block_bits
        else:
            self.stats.bits_read += self.block_bits

    def flush_cache(self) -> None:
        """Evict everything from internal memory (run the next query cold)."""
        self.cache.clear()

    # ------------------------------------------------------------------
    # Bulk byte-aligned I/O
    # ------------------------------------------------------------------

    def write_bytes(self, offset: int, data: bytes, nbits: int) -> None:
        """Write ``nbits`` bits of ``data`` at byte-aligned ``offset``."""
        if offset % 8 != 0:
            raise StorageError("write_bytes requires a byte-aligned offset")
        if offset + nbits > self._alloc_bits:
            raise StorageError("write past the end of the allocated region")
        nbytes = (nbits + 7) // 8
        if len(data) < nbytes:
            raise StorageError("data shorter than the declared bit length")
        if nbits == 0:
            return
        self._materialize()
        start = offset // 8
        self._data[start : start + nbytes] = data[:nbytes]
        B = self.block_bits
        self._touch(offset // B, (offset + nbits - 1) // B, write=True)
        self.stats.bits_written += nbits

    def store(self, data: bytes, nbits: int, *, align_block: bool = False) -> Extent:
        """Allocate space for ``nbits`` bits, write them, return the extent."""
        offset = self.alloc(nbits, align_block=align_block)
        self.write_bytes(offset, data, nbits)
        return Extent(offset, nbits)

    def reader(self, offset: int, nbits: int) -> BitReader:
        """Read ``[offset, offset+nbits)`` and return a bit reader over it.

        The whole extent is charged up front (the query algorithms in the
        paper always consume entire compressed bitmaps or whole blocks).
        """
        if nbits < 0 or offset < 0 or offset + nbits > self._alloc_bits:
            raise StorageError(
                f"read [{offset}, {offset + nbits}) outside allocated "
                f"region of {self._alloc_bits} bits"
            )
        if nbits:
            B = self.block_bits
            self._touch(offset // B, (offset + nbits - 1) // B, write=False)
            self.stats.bits_read += nbits
        # Copy only the extent's covering bytes, not the whole device:
        # the reader's window is position-relative, so shifting the
        # origin is invisible to every consumer (including the fast
        # kernels, which read the window triple).  On an mmap-backed
        # lazy disk this is what makes reads page on demand.
        first = offset >> 3
        stop = (offset + nbits + 7) >> 3
        return BitReader(
            bytes(self._data[first:stop]),
            bit_offset=offset - (first << 3),
            bit_length=nbits,
        )

    def read_extent(self, extent: Extent) -> BitReader:
        """Shorthand for :meth:`reader` on an :class:`Extent`."""
        return self.reader(extent.offset, extent.nbits)

    # ------------------------------------------------------------------
    # Sub-byte random access
    # ------------------------------------------------------------------

    def read_bits(self, offset: int, nbits: int) -> int:
        """Read ``nbits`` bits at any bit offset as an unsigned integer."""
        if nbits == 0:
            return 0
        if offset < 0 or offset + nbits > self._alloc_bits:
            raise StorageError("read outside the allocated region")
        B = self.block_bits
        self._touch(offset // B, (offset + nbits - 1) // B, write=False)
        self.stats.bits_read += nbits
        first = offset >> 3
        end = offset + nbits
        last = (end - 1) >> 3
        chunk = int.from_bytes(self._data[first : last + 1], "big")
        right = ((last + 1) << 3) - end
        return (chunk >> right) & ((1 << nbits) - 1)

    def write_bits(self, offset: int, value: int, nbits: int) -> None:
        """Write ``value`` into ``nbits`` bits at any bit offset.

        Performs a read-modify-write of the covering bytes; the I/O
        charge is one transfer per touched non-resident block (see
        ``_touch``).
        """
        if nbits == 0:
            return
        if value < 0 or value >> nbits:
            raise StorageError("value does not fit in the declared bit width")
        if offset < 0 or offset + nbits > self._alloc_bits:
            raise StorageError("write outside the allocated region")
        self._materialize()
        first = offset >> 3
        end = offset + nbits
        last = (end - 1) >> 3
        width = last - first + 1
        chunk = int.from_bytes(self._data[first : last + 1], "big")
        right = ((last + 1) << 3) - end
        mask = ((1 << nbits) - 1) << right
        chunk = (chunk & ~mask) | (value << right)
        self._data[first : last + 1] = chunk.to_bytes(width, "big")
        B = self.block_bits
        self._touch(offset // B, (end - 1) // B, write=True)
        self.stats.bits_written += nbits
