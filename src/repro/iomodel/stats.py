"""I/O statistics for the simulated block device.

The paper analyzes every data structure in the I/O model of Aggarwal and
Vitter: the cost of an operation is the number of memory blocks read and
written, where a block holds ``B`` bits.  This module provides the
counters that realize that cost model.  Every block transfer performed by
:class:`repro.iomodel.disk.Disk` increments these counters, so a query's
measured cost is exactly the quantity bounded by the paper's theorems.

Use :meth:`IOStats.measure` to capture the cost of a region of code::

    with disk.stats.measure() as m:
        index.range_query(3, 17)
    print(m.reads, m.writes)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Snapshot:
    """An immutable copy of the counters at one instant.

    Snapshots are *mergeable* (``+``): the cluster's scatter phase
    returns one per shard task — possibly measured in another worker
    process — and aggregates them back into cluster totals, so the
    I/O cost of a parallel run stays exactly comparable to the serial
    one.
    """

    reads: int = 0
    writes: int = 0
    bits_read: int = 0
    bits_written: int = 0

    @property
    def total(self) -> int:
        """Total block transfers (reads plus writes)."""
        return self.reads + self.writes

    def __sub__(self, other: "Snapshot") -> "Snapshot":
        return Snapshot(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            bits_read=self.bits_read - other.bits_read,
            bits_written=self.bits_written - other.bits_written,
        )

    def __add__(self, other: "Snapshot") -> "Snapshot":
        return Snapshot(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            bits_read=self.bits_read + other.bits_read,
            bits_written=self.bits_written + other.bits_written,
        )

    def to_json(self) -> dict:
        """A JSON-compatible dict (traces, bench results, ``stats()``)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bits_read": self.bits_read,
            "bits_written": self.bits_written,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Snapshot":
        """Rebuild from :meth:`to_json` output (unknown keys ignored)."""
        return cls(
            reads=data.get("reads", 0),
            writes=data.get("writes", 0),
            bits_read=data.get("bits_read", 0),
            bits_written=data.get("bits_written", 0),
        )


class Measurement:
    """The result of a :meth:`IOStats.measure` region.

    Attributes are populated when the ``with`` block exits; reading them
    earlier reflects the counters so far.
    """

    def __init__(self, stats: "IOStats") -> None:
        self._stats = stats
        self._start = stats.snapshot()
        self._end: Snapshot | None = None

    def _finish(self) -> None:
        self._end = self._stats.snapshot()

    def _delta(self) -> Snapshot:
        end = self._end if self._end is not None else self._stats.snapshot()
        return end - self._start

    @property
    def reads(self) -> int:
        """Blocks read during the measured region."""
        return self._delta().reads

    @property
    def writes(self) -> int:
        """Blocks written during the measured region."""
        return self._delta().writes

    @property
    def total(self) -> int:
        """Blocks transferred (read + written) during the region."""
        return self._delta().total

    @property
    def bits_read(self) -> int:
        """Payload bits requested by reads during the region.

        This is the amount of *useful* data the caller asked for; the
        block counters also charge for the unused remainder of each
        touched block, exactly as the I/O model does.
        """
        return self._delta().bits_read

    @property
    def bits_written(self) -> int:
        """Payload bits covered by writes during the region."""
        return self._delta().bits_written


class IOStats:
    """Mutable block-transfer counters shared by one simulated disk."""

    __slots__ = ("reads", "writes", "bits_read", "bits_written")

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bits_read = 0
        self.bits_written = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.bits_read = 0
        self.bits_written = 0

    def snapshot(self) -> Snapshot:
        """Return an immutable copy of the current counters."""
        return Snapshot(self.reads, self.writes, self.bits_read, self.bits_written)

    def add(self, delta: "Snapshot | IOStats") -> None:
        """Merge another counter set into this one.

        The aggregation primitive for multi-process serving: each
        worker measures its shard tasks against its own resident
        disks and ships back :class:`Snapshot` deltas, which the
        coordinator folds into one cluster-wide total.
        """
        self.reads += delta.reads
        self.writes += delta.writes
        self.bits_read += delta.bits_read
        self.bits_written += delta.bits_written

    @property
    def total(self) -> int:
        """Total block transfers so far."""
        return self.reads + self.writes

    @contextmanager
    def measure(self) -> Iterator[Measurement]:
        """Context manager capturing the I/O cost of the enclosed code."""
        m = Measurement(self)
        try:
            yield m
        finally:
            m._finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"bits_read={self.bits_read}, bits_written={self.bits_written})"
        )
