"""The I/O-model substrate: a simulated block device with exact accounting."""

from .cache import LRUBlockCache
from .disk import DEFAULT_BLOCK_BITS, DEFAULT_MEM_BLOCKS, Disk, DiskState, Extent
from .stats import IOStats, Measurement, Snapshot

__all__ = [
    "DEFAULT_BLOCK_BITS",
    "DEFAULT_MEM_BLOCKS",
    "Disk",
    "DiskState",
    "Extent",
    "IOStats",
    "LRUBlockCache",
    "Measurement",
    "Snapshot",
]
