"""Compiling predicates into executable plans, and executing them.

A :class:`Plan` is the compiled form of a normalized predicate: a
table of *unique* leaf intervals (the DAG's shared nodes — a leaf
appearing under several disjuncts is fetched once and its cache entry
shared) plus an operator tree over leaf indices.  The planner is
engine-agnostic: the single-process :class:`~repro.engine.engine.\
QueryEngine` and the sharded :class:`~repro.cluster.engine.\
ClusterEngine` compile through the same functions and execute the
same plan object, so the two serving layers can never diverge on
predicate semantics.

Execution comes in two forms:

* :func:`evaluate` — materialized: every unique leaf is fetched
  (deterministically, in leaf-table order — identical I/O under every
  executor), then the tree folds bottom-up with the complement-aware
  set algebra of :mod:`repro.bits.ops`.  A ``Not`` is a flag flip on
  the child's §2.1 representation — the paper's complement-threshold
  answers are *reused*, never materialized — and mixed operands
  rewrite into differences of the stored (small) lists.
* :func:`evaluate_iter` — streaming: the tree compiles into a lazy
  iterator pipeline (:mod:`.stream`) over per-leaf position
  iterators; ``And`` runs the k-way merge-intersect, ``Or`` the k-way
  merge-union, and an ``And`` with negated children subtracts their
  merged stream without ever buffering a complement.

:class:`PlanReport` is the typed, JSON-serializable answer of
``plan()``/``explain()``: the operator tree with one
:class:`LeafPlan` per unique leaf — backend verdict, predicted bits,
cache state, and (under a cluster) the per-shard fan-out.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..bits.ops import (
    count_aware,
    intersect_aware,
    intersect_aware_count,
    union_aware,
    union_aware_count,
)
from ..core.interface import RangeResult
from ..errors import QueryError
from . import stream
from .predicates import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Pred,
    Range,
    columns_of,
    normalize,
)

#: Operator-tree node tags (the tree is plain nested tuples, so a
#: compiled plan is picklable and trivially JSON-convertible).
LEAF = "leaf"
NOT = "not"
AND = "and"
OR = "or"
ALL = "all"
EMPTY = "empty"


@dataclass(frozen=True)
class Plan:
    """One compiled predicate: unique leaves + an operator tree.

    ``leaves`` holds every distinct ``(column, char_lo, char_hi)``
    interval the plan reads, sorted — the backend ``range_query``
    calls of the DAG.  ``root`` is the operator tree: ``("leaf", i)``,
    ``("not", child)``, ``("and", (children...))``,
    ``("or", (children...))``, ``("all",)`` or ``("empty",)``.
    ``columns`` records every column the *original* predicate
    mentioned (simplification may have dropped some), which is what
    execution validates universes against.
    """

    normalized: Pred
    leaves: tuple[tuple[str, int, int], ...]
    root: tuple
    columns: tuple[str, ...]

    @property
    def is_trivial(self) -> bool:
        """True when no index bits are needed (TRUE/FALSE predicates)."""
        return not self.leaves

    @property
    def needs_universe(self) -> bool:
        """True when execution must know the exact row universe.

        ``Not`` and ``TRUE`` answer with complements *of the universe*;
        plans without them are pure positive set algebra, which
        tolerates columns whose position spaces have drifted apart
        under engine-level single-column updates.
        """

        def walk(node: tuple) -> bool:
            tag = node[0]
            if tag in (NOT, ALL):
                return True
            if tag in (AND, OR):
                return any(walk(c) for c in node[1])
            return False

        return walk(self.root)

    def fingerprint(
        self, epoch_of: "Callable[[str], object] | None" = None
    ) -> str:
        """A stable content hash of the compiled plan.

        ``compile_pred`` canonicalizes (normalized tree, sorted leaf
        table, renumbered operator tree), so equivalent predicates
        compile to identical plans and collide here, while any
        difference in leaves, operator structure, or referenced
        columns changes the hash.  ``epoch_of(column)`` mixes each
        column's dictionary epoch into the key so it cannot survive a
        drop/re-add of a column it touches.  Pairs with
        :meth:`repro.query.Pred.fingerprint` as a coalescing or
        result-cache key.
        """
        if epoch_of is not None:
            scope: tuple = tuple((c, str(epoch_of(c))) for c in self.columns)
        else:
            scope = self.columns
        payload = repr(("plan", scope, self.leaves, self.root))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def resolve_universe(plan: Plan, n_of: Callable[[str], int]) -> int:
    """The row universe a plan executes against.

    All referenced columns agreeing is the normal case.  Columns that
    have drifted apart (engine-level single-column updates) still
    serve pure positive plans — the answer universe is the widest
    column — but complement semantics (``Not``, ``TRUE``) are
    undefined over misaligned position spaces and are rejected.
    """
    universes = {n_of(col) for col in plan.columns}
    if not universes:
        raise QueryError(
            "predicate references no column; there is no row universe "
            "to answer against"
        )
    if len(universes) == 1:
        return universes.pop()
    if plan.needs_universe:
        raise QueryError(
            f"columns {list(plan.columns)} disagree on row count "
            f"{sorted(universes)}; Not/TRUE need aligned columns"
        )
    return max(universes)


def compile_pred(pred: Pred, sigma_of: Callable[[str], int]) -> Plan:
    """Normalize and compile a code-space predicate into a :class:`Plan`."""
    if not isinstance(pred, Pred):
        raise QueryError(
            f"expected a predicate, got {type(pred).__name__}; build one "
            "from repro.query (Range/Eq/In/And/Or/Not)"
        )
    columns = tuple(sorted(columns_of(pred)))
    normalized = normalize(pred, sigma_of)
    leaf_index: dict[tuple[str, int, int], int] = {}

    def leaf_id(leaf: Range) -> int:
        key = (leaf.column, leaf.lo, leaf.hi)
        if key not in leaf_index:
            leaf_index[key] = len(leaf_index)
        return leaf_index[key]

    def compile_node(node: Pred) -> tuple:
        if node is TRUE:
            return (ALL,)
        if node is FALSE:
            return (EMPTY,)
        if isinstance(node, Range):
            return (LEAF, leaf_id(node))
        if isinstance(node, Not):
            return (NOT, compile_node(node.part))
        if isinstance(node, And):
            return (AND, tuple(compile_node(p) for p in node.parts))
        if isinstance(node, Or):
            return (OR, tuple(compile_node(p) for p in node.parts))
        raise QueryError(
            f"unexpected normalized node {type(node).__name__}"
        )

    root = compile_node(normalized)
    # Renumber leaves into sorted order so execution's fetch sequence
    # (and therefore its I/O) is canonical for equivalent predicates.
    ordered = sorted(leaf_index)
    remap = {leaf_index[key]: i for i, key in enumerate(ordered)}

    def renumber(node: tuple) -> tuple:
        if node[0] == LEAF:
            return (LEAF, remap[node[1]])
        if node[0] == NOT:
            return (NOT, renumber(node[1]))
        if node[0] in (AND, OR):
            return (node[0], tuple(renumber(c) for c in node[1]))
        return node

    return Plan(
        normalized=normalized,
        leaves=tuple(ordered),
        root=renumber(root),
        columns=columns,
    )


# ----------------------------------------------------------------------
# Materialized execution (complement-aware set algebra)
# ----------------------------------------------------------------------


def align_leaf(
    result: RangeResult, universe: int, needs_universe: bool
) -> tuple[list[int], bool]:
    """Validate one leaf answer against the plan universe, symmetrically.

    A leaf universe *larger* than the plan's is always corruption.  A
    *smaller* one is legitimate only for pure positive plans (drifted
    columns, ``resolve_universe`` picked the max): the positions are
    re-anchored by expanding a complement representation — a §2.1
    complement is relative to its own column's universe — and plain
    positions pass through unchanged because they are already global.
    Under ``needs_universe`` (``Not``/``TRUE`` in the tree) any
    mismatch is rejected; complements of a smaller universe must never
    silently flow into algebra over the plan universe.
    """
    if result.universe > universe:
        raise QueryError(
            f"leaf universe {result.universe} exceeds the plan "
            f"universe {universe}; columns are out of alignment"
        )
    if result.universe != universe:
        if needs_universe:
            raise QueryError(
                f"leaf universe {result.universe} != plan universe "
                f"{universe}; Not/TRUE need aligned columns"
            )
        if result.complemented:
            return result.positions(), False
    return result.stored_positions(), result.complemented


def _subtree_leaves(node: tuple, out: set[int]) -> None:
    tag = node[0]
    if tag == LEAF:
        out.add(node[1])
    elif tag == NOT:
        _subtree_leaves(node[1], out)
    elif tag in (AND, OR):
        for child in node[1]:
            _subtree_leaves(child, out)


def order_children(
    children: tuple, leaf_costs: Sequence[float] | None
) -> tuple:
    """Order sibling subtrees by predicted fetch cost, cheapest first.

    ``leaf_costs[i]`` is the advisor's predicted bits for
    ``plan.leaves[i]`` (zero when cached); a subtree costs the sum
    over its distinct leaves.  The sort is stable, so equal-cost
    siblings keep the canonical leaf-table order and the demanded-leaf
    sequence stays deterministic.  With no cost vector the canonical
    order is returned untouched.
    """
    if leaf_costs is None or len(children) < 2:
        return children

    def cost(node: tuple) -> float:
        seen: set[int] = set()
        _subtree_leaves(node, seen)
        return sum(leaf_costs[i] for i in seen)

    return tuple(sorted(children, key=cost))


def evaluate(
    plan: Plan,
    leaf_results: Sequence[RangeResult],
    universe: int,
) -> RangeResult:
    """Fold one fetched plan into its answer.

    ``leaf_results[i]`` is the :class:`RangeResult` of
    ``plan.leaves[i]`` — fetched by whatever serves the plan (engine
    LRU, cluster scatter, bare indexes).  The fold works on
    ``(stored, complemented)`` pairs, so a complement-represented
    majority answer flows through ``Not``/``And``/``Or`` without ever
    being expanded; only the final :class:`RangeResult` (itself
    possibly complemented) is produced.
    """
    if len(leaf_results) != len(plan.leaves):
        raise QueryError(
            f"plan has {len(plan.leaves)} leaves, got "
            f"{len(leaf_results)} results"
        )
    needs_universe = plan.needs_universe
    aligned = [
        align_leaf(result, universe, needs_universe)
        for result in leaf_results
    ]

    def fold(node: tuple) -> tuple[list[int], bool]:
        tag = node[0]
        if tag == ALL:
            return [], True
        if tag == EMPTY:
            return [], False
        if tag == LEAF:
            return aligned[node[1]]
        if tag == NOT:
            stored, comp = fold(node[1])
            return stored, not comp
        if tag == AND:
            stored, comp = fold(node[1][0])
            for child in node[1][1:]:
                c_stored, c_comp = fold(child)
                stored, comp = intersect_aware(
                    stored, comp, c_stored, c_comp
                )
            return stored, comp
        if tag == OR:
            stored, comp = fold(node[1][0])
            for child in node[1][1:]:
                c_stored, c_comp = fold(child)
                stored, comp = union_aware(stored, comp, c_stored, c_comp)
            return stored, comp
        raise QueryError(f"unknown plan node {tag!r}")

    stored, comp = fold(plan.root)
    return RangeResult(stored, universe, complemented=comp)


def evaluate_fetch(
    plan: Plan,
    fetch: Callable[[str, int, int], RangeResult],
    universe: int,
    leaf_costs: Sequence[float] | None = None,
) -> RangeResult:
    """:func:`evaluate` with lazy, memoized, short-circuiting fetches.

    Leaves are fetched on demand as the fold reaches them (each unique
    leaf at most once — the DAG's sharing): an ``And`` that goes empty
    skips its remaining children's fetches entirely (the §1
    empty-dimension short-circuit, generalized), and an ``Or`` that
    reaches the full universe stops likewise.  With ``leaf_costs``
    (the advisor's predicted bits per leaf, zero when cached), ``And``
    legs run cheapest-first so a cheap selective leg can empty the
    conjunction before the expensive legs are ever fetched.  The
    demanded-leaf sequence is a deterministic function of the
    canonical plan, the cost vector, and the data.  Single-process
    serving uses this; the cluster prefers :func:`evaluate` over a
    prefetched batch, trading the short-circuit for overlapped,
    per-shard-batched scatter I/O that is identical under every
    executor.
    """
    memo: dict[int, tuple[list[int], bool]] = {}
    needs_universe = plan.needs_universe

    def leaf(index: int) -> tuple[list[int], bool]:
        if index not in memo:
            memo[index] = align_leaf(
                fetch(*plan.leaves[index]), universe, needs_universe
            )
        return memo[index]

    def fold(node: tuple) -> tuple[list[int], bool]:
        tag = node[0]
        if tag == ALL:
            return [], True
        if tag == EMPTY:
            return [], False
        if tag == LEAF:
            return leaf(node[1])
        if tag == NOT:
            stored, comp = fold(node[1])
            return stored, not comp
        if tag == AND:
            children = order_children(node[1], leaf_costs)
            stored, comp = fold(children[0])
            for child in children[1:]:
                if not stored and not comp:  # empty: nothing can revive
                    break
                c_stored, c_comp = fold(child)
                stored, comp = intersect_aware(
                    stored, comp, c_stored, c_comp
                )
            return stored, comp
        if tag == OR:
            stored, comp = fold(node[1][0])
            for child in node[1][1:]:
                if not stored and comp:  # full: nothing can add
                    break
                c_stored, c_comp = fold(child)
                stored, comp = union_aware(stored, comp, c_stored, c_comp)
            return stored, comp
        raise QueryError(f"unknown plan node {tag!r}")

    stored, comp = fold(plan.root)
    return RangeResult(stored, universe, complemented=comp)


# ----------------------------------------------------------------------
# Cardinality-space execution (aggregates)
# ----------------------------------------------------------------------


def _is_full(stored: list[int], comp: bool, universe: int) -> bool:
    """Does this aware pair denote all of ``[0, universe)``?

    Two shapes mean "full": a complemented empty list, and — unlike the
    select path, which only recognizes the first — a *plain* list that
    has reached ``universe`` elements (positions are strictly
    increasing in ``[0, universe)``, so length is membership-complete).
    Counting folds check both, which is what lets a wide positive
    disjunction stop fetching the moment its union saturates.
    """
    return (not stored and comp) or (not comp and len(stored) == universe)


class _CardinalityFold:
    """Shared machinery of the counting executors.

    Folds interior subtrees with the aware *set* algebra (intermediates
    genuinely need elements) but combines at counting boundaries with
    the cardinality twins of :mod:`repro.bits.ops`, so the root-level
    result list — the one ``evaluate`` would hand back — is never
    built.  ``Not`` stays a flag flip (count = ``universe - child``),
    and the same lazy memoized fetch + ``And`` cost ordering as
    :func:`evaluate_fetch` applies, plus the stronger
    :func:`_is_full` saturation check on ``Or``.
    """

    def __init__(
        self,
        plan: Plan,
        fetch: Callable[[str, int, int], RangeResult],
        universe: int,
        leaf_costs: Sequence[float] | None,
    ) -> None:
        self.plan = plan
        self.fetch = fetch
        self.universe = universe
        self.leaf_costs = leaf_costs
        self.needs_universe = plan.needs_universe
        self.memo: dict[int, tuple[list[int], bool]] = {}

    def leaf(self, index: int) -> tuple[list[int], bool]:
        if index not in self.memo:
            self.memo[index] = align_leaf(
                self.fetch(*self.plan.leaves[index]),
                self.universe,
                self.needs_universe,
            )
        return self.memo[index]

    def fold(self, node: tuple) -> tuple[list[int], bool]:
        """Materialize one subtree as an aware pair (with saturation)."""
        tag = node[0]
        if tag == ALL:
            return [], True
        if tag == EMPTY:
            return [], False
        if tag == LEAF:
            return self.leaf(node[1])
        if tag == NOT:
            stored, comp = self.fold(node[1])
            return stored, not comp
        if tag == AND:
            children = order_children(node[1], self.leaf_costs)
            stored, comp = self.fold(children[0])
            for child in children[1:]:
                if not stored and not comp:
                    break
                c_stored, c_comp = self.fold(child)
                stored, comp = intersect_aware(
                    stored, comp, c_stored, c_comp
                )
            return stored, comp
        if tag == OR:
            stored, comp = self.fold(node[1][0])
            for child in node[1][1:]:
                if _is_full(stored, comp, self.universe):
                    break
                c_stored, c_comp = self.fold(child)
                stored, comp = union_aware(stored, comp, c_stored, c_comp)
            return stored, comp
        raise QueryError(f"unknown plan node {tag!r}")

    def count(self, node: tuple) -> int:
        """Cardinality of one subtree without building its answer list."""
        universe = self.universe
        tag = node[0]
        if tag == ALL:
            return universe
        if tag == EMPTY:
            return 0
        if tag == LEAF:
            stored, comp = self.leaf(node[1])
            return count_aware(stored, comp, universe)
        if tag == NOT:
            return universe - self.count(node[1])
        if tag == AND:
            children = order_children(node[1], self.leaf_costs)
            stored, comp = self.fold(children[0])
            for child in children[1:-1]:
                if not stored and not comp:
                    return 0
                c_stored, c_comp = self.fold(child)
                stored, comp = intersect_aware(
                    stored, comp, c_stored, c_comp
                )
            if not stored and not comp:
                return 0
            c_stored, c_comp = self.fold(children[-1])
            return intersect_aware_count(
                stored, comp, c_stored, c_comp, universe
            )
        if tag == OR:
            children = node[1]
            stored, comp = self.fold(children[0])
            for child in children[1:-1]:
                if _is_full(stored, comp, universe):
                    return universe
                c_stored, c_comp = self.fold(child)
                stored, comp = union_aware(stored, comp, c_stored, c_comp)
            if _is_full(stored, comp, universe):
                return universe
            c_stored, c_comp = self.fold(children[-1])
            return union_aware_count(
                stored, comp, c_stored, c_comp, universe
            )
        raise QueryError(f"unknown plan node {tag!r}")

    def exists(self, node: tuple) -> bool:
        """Is the subtree non-empty, probing as few leaves as possible?

        ``Or`` recurses child-by-child — cheapest predicted subtree
        first — and stops at the first non-empty fold; everything else
        asks the counting fold (which carries its own short-circuits).
        """
        tag = node[0]
        if tag == ALL:
            return self.universe > 0
        if tag == EMPTY:
            return False
        if tag == OR:
            for child in order_children(node[1], self.leaf_costs):
                if self.exists(child):
                    return True
            return False
        return self.count(node) > 0


def evaluate_count(
    plan: Plan,
    fetch: Callable[[str, int, int], RangeResult],
    universe: int,
    leaf_costs: Sequence[float] | None = None,
) -> int:
    """Cardinality of a plan's answer, folded in counting space.

    Same fetch contract and short-circuits as :func:`evaluate_fetch`
    (plus :func:`_is_full` saturation on ``Or``), but the root-level
    combination uses the counting twins of the aware algebra, so the
    global answer list is never materialized.
    """
    return _CardinalityFold(plan, fetch, universe, leaf_costs).count(
        plan.root
    )


def evaluate_exists(
    plan: Plan,
    fetch: Callable[[str, int, int], RangeResult],
    universe: int,
    leaf_costs: Sequence[float] | None = None,
) -> bool:
    """Does the plan match at least one row?

    A top-level (or nested) ``Or`` stops at the first non-empty child
    fold — cost-ordered, so the cheapest disjunct is probed first —
    and other shapes reduce to ``count > 0`` with counting-fold
    short-circuits.
    """
    return _CardinalityFold(plan, fetch, universe, leaf_costs).exists(
        plan.root
    )


def evaluate_count_by(
    plan: Plan | None,
    fetch: Callable[[str, int, int], RangeResult],
    universe: int,
    group_codes: Sequence[int],
    group_fetch: Callable[[int], RangeResult],
    leaf_costs: Sequence[float] | None = None,
) -> dict[int, int]:
    """Per-group-code cardinalities of ``pred AND group == code``.

    The predicate folds *once* into an aware pair; each group code
    then costs one ``group_fetch(code)`` (the group column's
    equality leaf) plus a counting intersection — no per-group result
    lists, no re-evaluation of the predicate.  ``plan=None`` means no
    predicate (count every row by group).  Codes whose intersection is
    empty are omitted; an unsatisfiable predicate returns ``{}``
    without touching the group column at all.
    """
    if plan is None:
        stored: list[int] = []
        comp = True
    else:
        folder = _CardinalityFold(plan, fetch, universe, leaf_costs)
        stored, comp = folder.fold(plan.root)
        if not stored and not comp:
            return {}
    out: dict[int, int] = {}
    for code in group_codes:
        g_stored, g_comp = align_leaf(
            group_fetch(code), universe, needs_universe=False
        )
        n = intersect_aware_count(stored, comp, g_stored, g_comp, universe)
        if n:
            out[code] = n
    return out


def specialize(
    plan: Plan,
    translate: Callable[[str, int, int], tuple[int, int] | None],
) -> tuple[tuple[tuple[str, int, int], ...], tuple]:
    """Rewrite a compiled plan's leaves through a shard translator.

    ``translate(column, lo, hi)`` maps a global code interval onto one
    shard's local alphabet, or returns ``None`` when the shard holds
    nothing in the interval (pruned).  Pruned leaves become ``EMPTY``
    and the tree constant-folds — ``Not(EMPTY)`` is ``ALL``, an
    ``And`` with an ``EMPTY`` child collapses, an ``Or`` with an
    ``ALL`` child saturates — so a shard the predicate cannot touch
    reduces to an ``EMPTY`` root (skippable with no round trip) and a
    shard a complement fully covers reduces to ``ALL`` (answerable
    from the shard's row count alone).  Surviving leaves are compacted
    and renumbered; returns ``(leaves, root)`` as the plain picklable
    tuples a worker rebuilds a shard-local :class:`Plan` from.
    """
    local: list[tuple[str, int, int] | None] = []
    for col, lo, hi in plan.leaves:
        translated = translate(col, lo, hi)
        local.append(
            None if translated is None else (col, *translated)
        )

    def rewrite(node: tuple) -> tuple:
        tag = node[0]
        if tag == LEAF:
            return (EMPTY,) if local[node[1]] is None else node
        if tag == NOT:
            child = rewrite(node[1])
            if child[0] == EMPTY:
                return (ALL,)
            if child[0] == ALL:
                return (EMPTY,)
            return (NOT, child)
        if tag in (AND, OR):
            absorb, identity = (EMPTY, ALL) if tag == AND else (ALL, EMPTY)
            children = []
            for part in node[1]:
                folded = rewrite(part)
                if folded[0] == absorb:
                    return (absorb,)
                if folded[0] == identity:
                    continue
                children.append(folded)
            if not children:
                return (identity,)
            if len(children) == 1:
                return children[0]
            return (tag, tuple(children))
        return node

    root = rewrite(plan.root)
    used: set[int] = set()
    _subtree_leaves(root, used)
    remap = {old: new for new, old in enumerate(sorted(used))}

    def renumber(node: tuple) -> tuple:
        if node[0] == LEAF:
            return (LEAF, remap[node[1]])
        if node[0] == NOT:
            return (NOT, renumber(node[1]))
        if node[0] in (AND, OR):
            return (node[0], tuple(renumber(c) for c in node[1]))
        return node

    leaves = tuple(local[old] for old in sorted(used))
    return leaves, renumber(root)


# ----------------------------------------------------------------------
# Streaming execution
# ----------------------------------------------------------------------


def evaluate_iter(
    plan: Plan,
    leaf_iter: Callable[[str, int, int], object],
    universe: int,
):
    """The streaming form of :func:`evaluate`.

    ``leaf_iter(column, lo, hi)`` returns a sorted position iterator
    for one leaf (e.g. ``QueryEngine.query_iter`` or the cluster's
    prefetching gather).  The operator tree becomes a pipeline of the
    combinators in :mod:`.stream`: positions are emitted one at a
    time, and an ``And`` whose positive side runs dry ends the whole
    select early.  Only a ``Not`` with no positive sibling walks the
    universe (that answer *is* O(universe) long).
    """

    def build(node: tuple):
        tag = node[0]
        if tag == ALL:
            return iter(range(universe))
        if tag == EMPTY:
            return iter(())
        if tag == LEAF:
            col, lo, hi = plan.leaves[node[1]]
            return leaf_iter(col, lo, hi)
        if tag == NOT:
            return stream.complement_iter(build(node[1]), universe)
        if tag == OR:
            return stream.union_iters([build(c) for c in node[1]])
        if tag == AND:
            positive = [c for c in node[1] if c[0] != NOT]
            negated = [c[1] for c in node[1] if c[0] == NOT]
            if not positive:
                return stream.complement_iter(
                    stream.union_iters([build(c) for c in negated]),
                    universe,
                )
            base = stream.intersect_iters([build(c) for c in positive])
            if negated:
                return stream.difference_iter(
                    base, stream.union_iters([build(c) for c in negated])
                )
            return base
        raise QueryError(f"unknown plan node {tag!r}")

    return build(plan.root)


# ----------------------------------------------------------------------
# The typed plan report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardLeafPlan:
    """One shard's share of a leaf fetch (cluster fan-out entry)."""

    shard_id: int
    pruned: bool
    backend: str | None = None
    family: str | None = None
    estimated_cost_bits: float = 0.0
    cached: bool = False

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "pruned": self.pruned,
            "backend": self.backend,
            "family": self.family,
            "estimated_cost_bits": self.estimated_cost_bits,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardLeafPlan":
        return cls(
            shard_id=data["shard_id"],
            pruned=data["pruned"],
            backend=data.get("backend"),
            family=data.get("family"),
            estimated_cost_bits=data.get("estimated_cost_bits", 0.0),
            cached=data.get("cached", False),
        )


@dataclass(frozen=True)
class LeafPlan:
    """How one unique leaf interval will be served.

    Single-engine plans fill the backend verdict directly; cluster
    plans additionally carry the per-shard fan-out in ``shards`` (the
    top-level fields then aggregate: summed predicted bits, ``cached``
    iff every non-pruned shard is cached in the shared tier).
    """

    column: str
    char_lo: int
    char_hi: int
    backend: str | None
    family: str | None
    estimated_cost_bits: float
    cached: bool
    shards: tuple[ShardLeafPlan, ...] | None = None

    def to_dict(self) -> dict:
        out = {
            "column": self.column,
            "char_lo": self.char_lo,
            "char_hi": self.char_hi,
            "backend": self.backend,
            "family": self.family,
            "estimated_cost_bits": self.estimated_cost_bits,
            "cached": self.cached,
        }
        if self.shards is not None:
            out["shards"] = [s.to_dict() for s in self.shards]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LeafPlan":
        shards = data.get("shards")
        return cls(
            column=data["column"],
            char_lo=data["char_lo"],
            char_hi=data["char_hi"],
            backend=data.get("backend"),
            family=data.get("family"),
            estimated_cost_bits=data.get("estimated_cost_bits", 0.0),
            cached=data.get("cached", False),
            shards=(
                None
                if shards is None
                else tuple(ShardLeafPlan.from_dict(s) for s in shards)
            ),
        )

    def describe(self) -> str:
        if self.backend is not None:
            where = f"{self.backend}"
        elif self.shards is not None:
            live = sum(1 for s in self.shards if not s.pruned)
            where = "all shards pruned" if not live else f"{live} shard(s)"
        else:
            where = "?"
        state = "cached" if self.cached else "cold"
        return (
            f"{self.column}[{self.char_lo}..{self.char_hi}] via {where} "
            f"({state}, est {self.estimated_cost_bits:,.0f} bits)"
        )


@dataclass(frozen=True)
class PlanReport:
    """The typed answer of ``plan(pred)`` / ``explain(pred)``.

    One object for both serving layers: ``kind`` says which produced
    it, ``root`` is the operator tree over ``leaves`` (leaf nodes
    reference leaf indices), and every field round-trips through
    :meth:`to_dict` into plain JSON types.  ``str(report)`` renders
    the human-readable tree.
    """

    kind: str  # "engine" | "cluster"
    predicate: str
    universe: int
    root: tuple
    leaves: tuple[LeafPlan, ...]
    num_shards: int | None = None
    estimated_total_bits: float = field(default=0.0)

    def to_dict(self) -> dict:
        def node_to_dict(node: tuple):
            tag = node[0]
            if tag == LEAF:
                return {"op": LEAF, "leaf": node[1]}
            if tag == NOT:
                return {"op": NOT, "child": node_to_dict(node[1])}
            if tag in (AND, OR):
                return {
                    "op": tag,
                    "children": [node_to_dict(c) for c in node[1]],
                }
            return {"op": tag}

        return {
            "kind": self.kind,
            "predicate": self.predicate,
            "universe": self.universe,
            "num_shards": self.num_shards,
            "estimated_total_bits": self.estimated_total_bits,
            "root": node_to_dict(self.root),
            "leaves": [leaf.to_dict() for leaf in self.leaves],
        }

    def to_json(self) -> dict:
        """Alias of :meth:`to_dict`, matching ``Snapshot``/``GatherStats``."""
        return self.to_dict()

    @classmethod
    def from_json(cls, data: dict) -> "PlanReport":
        """Rebuild a report (operator tuples included) from its dict."""

        def node_from_dict(node: dict) -> tuple:
            op = node["op"]
            if op == LEAF:
                return (LEAF, node["leaf"])
            if op == NOT:
                return (NOT, node_from_dict(node["child"]))
            if op in (AND, OR):
                return (
                    op,
                    tuple(node_from_dict(c) for c in node["children"]),
                )
            return (op,)

        return cls(
            kind=data["kind"],
            predicate=data["predicate"],
            universe=data["universe"],
            root=node_from_dict(data["root"]),
            leaves=tuple(
                LeafPlan.from_dict(leaf) for leaf in data["leaves"]
            ),
            num_shards=data.get("num_shards"),
            estimated_total_bits=data.get("estimated_total_bits", 0.0),
        )

    def describe(self) -> str:
        lines = [
            f"{self.kind} plan over universe {self.universe}"
            + (
                f" ({self.num_shards} shard(s))"
                if self.num_shards is not None
                else ""
            )
            + f": {self.predicate}"
        ]

        def render(node: tuple, depth: int) -> None:
            pad = "  " * (depth + 1)
            tag = node[0]
            if tag == LEAF:
                lines.append(pad + self.leaves[node[1]].describe())
            elif tag == NOT:
                lines.append(pad + "not")
                render(node[1], depth + 1)
            elif tag in (AND, OR):
                lines.append(pad + tag)
                for child in node[1]:
                    render(child, depth + 1)
            elif tag == ALL:
                lines.append(pad + "all rows (no index bits)")
            else:
                lines.append(pad + "empty (no index bits)")

        render(self.root, 0)
        lines.append(
            f"  total: {len(self.leaves)} unique leaf fetch(es), "
            f"est {self.estimated_total_bits:,.0f} bits"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()
