"""Compiling predicates into executable plans, and executing them.

A :class:`Plan` is the compiled form of a normalized predicate: a
table of *unique* leaf intervals (the DAG's shared nodes — a leaf
appearing under several disjuncts is fetched once and its cache entry
shared) plus an operator tree over leaf indices.  The planner is
engine-agnostic: the single-process :class:`~repro.engine.engine.\
QueryEngine` and the sharded :class:`~repro.cluster.engine.\
ClusterEngine` compile through the same functions and execute the
same plan object, so the two serving layers can never diverge on
predicate semantics.

Execution comes in two forms:

* :func:`evaluate` — materialized: every unique leaf is fetched
  (deterministically, in leaf-table order — identical I/O under every
  executor), then the tree folds bottom-up with the complement-aware
  set algebra of :mod:`repro.bits.ops`.  A ``Not`` is a flag flip on
  the child's §2.1 representation — the paper's complement-threshold
  answers are *reused*, never materialized — and mixed operands
  rewrite into differences of the stored (small) lists.
* :func:`evaluate_iter` — streaming: the tree compiles into a lazy
  iterator pipeline (:mod:`.stream`) over per-leaf position
  iterators; ``And`` runs the k-way merge-intersect, ``Or`` the k-way
  merge-union, and an ``And`` with negated children subtracts their
  merged stream without ever buffering a complement.

:class:`PlanReport` is the typed, JSON-serializable answer of
``plan()``/``explain()``: the operator tree with one
:class:`LeafPlan` per unique leaf — backend verdict, predicted bits,
cache state, and (under a cluster) the per-shard fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..bits.ops import intersect_aware, union_aware
from ..core.interface import RangeResult
from ..errors import QueryError
from . import stream
from .predicates import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Pred,
    Range,
    columns_of,
    normalize,
)

#: Operator-tree node tags (the tree is plain nested tuples, so a
#: compiled plan is picklable and trivially JSON-convertible).
LEAF = "leaf"
NOT = "not"
AND = "and"
OR = "or"
ALL = "all"
EMPTY = "empty"


@dataclass(frozen=True)
class Plan:
    """One compiled predicate: unique leaves + an operator tree.

    ``leaves`` holds every distinct ``(column, char_lo, char_hi)``
    interval the plan reads, sorted — the backend ``range_query``
    calls of the DAG.  ``root`` is the operator tree: ``("leaf", i)``,
    ``("not", child)``, ``("and", (children...))``,
    ``("or", (children...))``, ``("all",)`` or ``("empty",)``.
    ``columns`` records every column the *original* predicate
    mentioned (simplification may have dropped some), which is what
    execution validates universes against.
    """

    normalized: Pred
    leaves: tuple[tuple[str, int, int], ...]
    root: tuple
    columns: tuple[str, ...]

    @property
    def is_trivial(self) -> bool:
        """True when no index bits are needed (TRUE/FALSE predicates)."""
        return not self.leaves

    @property
    def needs_universe(self) -> bool:
        """True when execution must know the exact row universe.

        ``Not`` and ``TRUE`` answer with complements *of the universe*;
        plans without them are pure positive set algebra, which
        tolerates columns whose position spaces have drifted apart
        under engine-level single-column updates.
        """

        def walk(node: tuple) -> bool:
            tag = node[0]
            if tag in (NOT, ALL):
                return True
            if tag in (AND, OR):
                return any(walk(c) for c in node[1])
            return False

        return walk(self.root)


def resolve_universe(plan: Plan, n_of: Callable[[str], int]) -> int:
    """The row universe a plan executes against.

    All referenced columns agreeing is the normal case.  Columns that
    have drifted apart (engine-level single-column updates) still
    serve pure positive plans — the answer universe is the widest
    column — but complement semantics (``Not``, ``TRUE``) are
    undefined over misaligned position spaces and are rejected.
    """
    universes = {n_of(col) for col in plan.columns}
    if not universes:
        raise QueryError(
            "predicate references no column; there is no row universe "
            "to answer against"
        )
    if len(universes) == 1:
        return universes.pop()
    if plan.needs_universe:
        raise QueryError(
            f"columns {list(plan.columns)} disagree on row count "
            f"{sorted(universes)}; Not/TRUE need aligned columns"
        )
    return max(universes)


def compile_pred(pred: Pred, sigma_of: Callable[[str], int]) -> Plan:
    """Normalize and compile a code-space predicate into a :class:`Plan`."""
    if not isinstance(pred, Pred):
        raise QueryError(
            f"expected a predicate, got {type(pred).__name__}; build one "
            "from repro.query (Range/Eq/In/And/Or/Not)"
        )
    columns = tuple(sorted(columns_of(pred)))
    normalized = normalize(pred, sigma_of)
    leaf_index: dict[tuple[str, int, int], int] = {}

    def leaf_id(leaf: Range) -> int:
        key = (leaf.column, leaf.lo, leaf.hi)
        if key not in leaf_index:
            leaf_index[key] = len(leaf_index)
        return leaf_index[key]

    def compile_node(node: Pred) -> tuple:
        if node is TRUE:
            return (ALL,)
        if node is FALSE:
            return (EMPTY,)
        if isinstance(node, Range):
            return (LEAF, leaf_id(node))
        if isinstance(node, Not):
            return (NOT, compile_node(node.part))
        if isinstance(node, And):
            return (AND, tuple(compile_node(p) for p in node.parts))
        if isinstance(node, Or):
            return (OR, tuple(compile_node(p) for p in node.parts))
        raise QueryError(
            f"unexpected normalized node {type(node).__name__}"
        )

    root = compile_node(normalized)
    # Renumber leaves into sorted order so execution's fetch sequence
    # (and therefore its I/O) is canonical for equivalent predicates.
    ordered = sorted(leaf_index)
    remap = {leaf_index[key]: i for i, key in enumerate(ordered)}

    def renumber(node: tuple) -> tuple:
        if node[0] == LEAF:
            return (LEAF, remap[node[1]])
        if node[0] == NOT:
            return (NOT, renumber(node[1]))
        if node[0] in (AND, OR):
            return (node[0], tuple(renumber(c) for c in node[1]))
        return node

    return Plan(
        normalized=normalized,
        leaves=tuple(ordered),
        root=renumber(root),
        columns=columns,
    )


# ----------------------------------------------------------------------
# Materialized execution (complement-aware set algebra)
# ----------------------------------------------------------------------


def evaluate(
    plan: Plan,
    leaf_results: Sequence[RangeResult],
    universe: int,
) -> RangeResult:
    """Fold one fetched plan into its answer.

    ``leaf_results[i]`` is the :class:`RangeResult` of
    ``plan.leaves[i]`` — fetched by whatever serves the plan (engine
    LRU, cluster scatter, bare indexes).  The fold works on
    ``(stored, complemented)`` pairs, so a complement-represented
    majority answer flows through ``Not``/``And``/``Or`` without ever
    being expanded; only the final :class:`RangeResult` (itself
    possibly complemented) is produced.
    """
    if len(leaf_results) != len(plan.leaves):
        raise QueryError(
            f"plan has {len(plan.leaves)} leaves, got "
            f"{len(leaf_results)} results"
        )
    for result in leaf_results:
        if result.universe > universe:
            raise QueryError(
                f"leaf universe {result.universe} exceeds the plan "
                f"universe {universe}; columns are out of alignment"
            )

    def fold(node: tuple) -> tuple[list[int], bool]:
        tag = node[0]
        if tag == ALL:
            return [], True
        if tag == EMPTY:
            return [], False
        if tag == LEAF:
            result = leaf_results[node[1]]
            if result.complemented and result.universe != universe:
                # A §2.1 complement representation is relative to its
                # own column's universe; under drifted columns (pure
                # positive plans only) expand it once so the algebra
                # speaks one universe.
                return result.positions(), False
            return result.stored_positions(), result.complemented
        if tag == NOT:
            stored, comp = fold(node[1])
            return stored, not comp
        if tag == AND:
            stored, comp = fold(node[1][0])
            for child in node[1][1:]:
                c_stored, c_comp = fold(child)
                stored, comp = intersect_aware(
                    stored, comp, c_stored, c_comp
                )
            return stored, comp
        if tag == OR:
            stored, comp = fold(node[1][0])
            for child in node[1][1:]:
                c_stored, c_comp = fold(child)
                stored, comp = union_aware(stored, comp, c_stored, c_comp)
            return stored, comp
        raise QueryError(f"unknown plan node {tag!r}")

    stored, comp = fold(plan.root)
    return RangeResult(stored, universe, complemented=comp)


def evaluate_fetch(
    plan: Plan,
    fetch: Callable[[str, int, int], RangeResult],
    universe: int,
) -> RangeResult:
    """:func:`evaluate` with lazy, memoized, short-circuiting fetches.

    Leaves are fetched on demand as the fold reaches them (each unique
    leaf at most once — the DAG's sharing): an ``And`` that goes empty
    skips its remaining children's fetches entirely (the §1
    empty-dimension short-circuit, generalized), and an ``Or`` that
    reaches the full universe stops likewise.  The demanded-leaf
    sequence is a deterministic function of the canonical plan and the
    data.  Single-process serving uses this; the cluster prefers
    :func:`evaluate` over a prefetched batch, trading the
    short-circuit for overlapped, per-shard-batched scatter I/O that
    is identical under every executor.
    """
    memo: dict[int, tuple[list[int], bool]] = {}

    def leaf(index: int) -> tuple[list[int], bool]:
        if index not in memo:
            result = fetch(*plan.leaves[index])
            if result.universe > universe:
                raise QueryError(
                    f"leaf universe {result.universe} exceeds the plan "
                    f"universe {universe}; columns are out of alignment"
                )
            if result.complemented and result.universe != universe:
                memo[index] = (result.positions(), False)
            else:
                memo[index] = (
                    result.stored_positions(), result.complemented
                )
        return memo[index]

    def fold(node: tuple) -> tuple[list[int], bool]:
        tag = node[0]
        if tag == ALL:
            return [], True
        if tag == EMPTY:
            return [], False
        if tag == LEAF:
            return leaf(node[1])
        if tag == NOT:
            stored, comp = fold(node[1])
            return stored, not comp
        if tag == AND:
            stored, comp = fold(node[1][0])
            for child in node[1][1:]:
                if not stored and not comp:  # empty: nothing can revive
                    break
                c_stored, c_comp = fold(child)
                stored, comp = intersect_aware(
                    stored, comp, c_stored, c_comp
                )
            return stored, comp
        if tag == OR:
            stored, comp = fold(node[1][0])
            for child in node[1][1:]:
                if not stored and comp:  # full: nothing can add
                    break
                c_stored, c_comp = fold(child)
                stored, comp = union_aware(stored, comp, c_stored, c_comp)
            return stored, comp
        raise QueryError(f"unknown plan node {tag!r}")

    stored, comp = fold(plan.root)
    return RangeResult(stored, universe, complemented=comp)


# ----------------------------------------------------------------------
# Streaming execution
# ----------------------------------------------------------------------


def evaluate_iter(
    plan: Plan,
    leaf_iter: Callable[[str, int, int], object],
    universe: int,
):
    """The streaming form of :func:`evaluate`.

    ``leaf_iter(column, lo, hi)`` returns a sorted position iterator
    for one leaf (e.g. ``QueryEngine.query_iter`` or the cluster's
    prefetching gather).  The operator tree becomes a pipeline of the
    combinators in :mod:`.stream`: positions are emitted one at a
    time, and an ``And`` whose positive side runs dry ends the whole
    select early.  Only a ``Not`` with no positive sibling walks the
    universe (that answer *is* O(universe) long).
    """

    def build(node: tuple):
        tag = node[0]
        if tag == ALL:
            return iter(range(universe))
        if tag == EMPTY:
            return iter(())
        if tag == LEAF:
            col, lo, hi = plan.leaves[node[1]]
            return leaf_iter(col, lo, hi)
        if tag == NOT:
            return stream.complement_iter(build(node[1]), universe)
        if tag == OR:
            return stream.union_iters([build(c) for c in node[1]])
        if tag == AND:
            positive = [c for c in node[1] if c[0] != NOT]
            negated = [c[1] for c in node[1] if c[0] == NOT]
            if not positive:
                return stream.complement_iter(
                    stream.union_iters([build(c) for c in negated]),
                    universe,
                )
            base = stream.intersect_iters([build(c) for c in positive])
            if negated:
                return stream.difference_iter(
                    base, stream.union_iters([build(c) for c in negated])
                )
            return base
        raise QueryError(f"unknown plan node {tag!r}")

    return build(plan.root)


# ----------------------------------------------------------------------
# The typed plan report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardLeafPlan:
    """One shard's share of a leaf fetch (cluster fan-out entry)."""

    shard_id: int
    pruned: bool
    backend: str | None = None
    family: str | None = None
    estimated_cost_bits: float = 0.0
    cached: bool = False

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "pruned": self.pruned,
            "backend": self.backend,
            "family": self.family,
            "estimated_cost_bits": self.estimated_cost_bits,
            "cached": self.cached,
        }


@dataclass(frozen=True)
class LeafPlan:
    """How one unique leaf interval will be served.

    Single-engine plans fill the backend verdict directly; cluster
    plans additionally carry the per-shard fan-out in ``shards`` (the
    top-level fields then aggregate: summed predicted bits, ``cached``
    iff every non-pruned shard is cached in the shared tier).
    """

    column: str
    char_lo: int
    char_hi: int
    backend: str | None
    family: str | None
    estimated_cost_bits: float
    cached: bool
    shards: tuple[ShardLeafPlan, ...] | None = None

    def to_dict(self) -> dict:
        out = {
            "column": self.column,
            "char_lo": self.char_lo,
            "char_hi": self.char_hi,
            "backend": self.backend,
            "family": self.family,
            "estimated_cost_bits": self.estimated_cost_bits,
            "cached": self.cached,
        }
        if self.shards is not None:
            out["shards"] = [s.to_dict() for s in self.shards]
        return out

    def describe(self) -> str:
        where = (
            f"{self.backend}" if self.backend is not None
            else f"{sum(1 for s in self.shards if not s.pruned)} shard(s)"
            if self.shards is not None
            else "?"
        )
        state = "cached" if self.cached else "cold"
        return (
            f"{self.column}[{self.char_lo}..{self.char_hi}] via {where} "
            f"({state}, est {self.estimated_cost_bits:,.0f} bits)"
        )


@dataclass(frozen=True)
class PlanReport:
    """The typed answer of ``plan(pred)`` / ``explain(pred)``.

    One object for both serving layers: ``kind`` says which produced
    it, ``root`` is the operator tree over ``leaves`` (leaf nodes
    reference leaf indices), and every field round-trips through
    :meth:`to_dict` into plain JSON types.  ``str(report)`` renders
    the human-readable tree.
    """

    kind: str  # "engine" | "cluster"
    predicate: str
    universe: int
    root: tuple
    leaves: tuple[LeafPlan, ...]
    num_shards: int | None = None
    estimated_total_bits: float = field(default=0.0)

    def to_dict(self) -> dict:
        def node_to_dict(node: tuple):
            tag = node[0]
            if tag == LEAF:
                return {"op": LEAF, "leaf": node[1]}
            if tag == NOT:
                return {"op": NOT, "child": node_to_dict(node[1])}
            if tag in (AND, OR):
                return {
                    "op": tag,
                    "children": [node_to_dict(c) for c in node[1]],
                }
            return {"op": tag}

        return {
            "kind": self.kind,
            "predicate": self.predicate,
            "universe": self.universe,
            "num_shards": self.num_shards,
            "estimated_total_bits": self.estimated_total_bits,
            "root": node_to_dict(self.root),
            "leaves": [leaf.to_dict() for leaf in self.leaves],
        }

    def describe(self) -> str:
        lines = [
            f"{self.kind} plan over universe {self.universe}"
            + (
                f" ({self.num_shards} shard(s))"
                if self.num_shards is not None
                else ""
            )
            + f": {self.predicate}"
        ]

        def render(node: tuple, depth: int) -> None:
            pad = "  " * (depth + 1)
            tag = node[0]
            if tag == LEAF:
                lines.append(pad + self.leaves[node[1]].describe())
            elif tag == NOT:
                lines.append(pad + "not")
                render(node[1], depth + 1)
            elif tag in (AND, OR):
                lines.append(pad + tag)
                for child in node[1]:
                    render(child, depth + 1)
            elif tag == ALL:
                lines.append(pad + "all rows (no index bits)")
            else:
                lines.append(pad + "empty (no index bits)")

        render(self.root, 0)
        lines.append(
            f"  total: {len(self.leaves)} unique leaf fetch(es), "
            f"est {self.estimated_total_bits:,.0f} bits"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()
