"""One composable query AST, planned and served identically everywhere.

The predicate algebra (:mod:`.predicates`) is the public query
surface of the whole stack: ``Range`` (either bound open), ``Eq``,
``In``, ``And``, ``Or``, ``Not``, composable with ``& | ~``.  The
planner (:mod:`.planner`) normalizes any predicate (NNF push-down,
per-column interval merging, IN → sorted code-interval runs) and
compiles it into a :class:`~.planner.Plan` — a DAG of backend
``range_query`` leaves combined by complement-aware set algebra —
that :class:`~repro.engine.engine.QueryEngine` and
:class:`~repro.cluster.engine.ClusterEngine` execute through one
shared path (materialized or streaming).  ``plan()``/``explain()``
answer with the typed, JSON-serializable :class:`~.planner.PlanReport`.

Value space vs code space: ``Table``/``ShardedTable`` accept these
same classes over column *values* and translate them through each
column's dictionary (:func:`~.predicates.translate`); the engines
speak dense codes directly.
"""

from .planner import (
    LeafPlan,
    Plan,
    PlanReport,
    ShardLeafPlan,
    align_leaf,
    compile_pred,
    evaluate,
    evaluate_count,
    evaluate_count_by,
    evaluate_exists,
    evaluate_fetch,
    evaluate_iter,
    order_children,
    resolve_universe,
    specialize,
)
from .predicates import (
    FALSE,
    TRUE,
    And,
    Eq,
    In,
    Not,
    Or,
    Pred,
    Range,
    columns_of,
    fingerprint_pred,
    normalize,
    translate,
)
from ._compat import mapping_to_pred, warn_mapping_adapter

__all__ = [
    "And",
    "Eq",
    "FALSE",
    "In",
    "LeafPlan",
    "Not",
    "Or",
    "Plan",
    "PlanReport",
    "Pred",
    "Range",
    "ShardLeafPlan",
    "TRUE",
    "align_leaf",
    "columns_of",
    "compile_pred",
    "evaluate",
    "evaluate_count",
    "evaluate_count_by",
    "evaluate_exists",
    "evaluate_fetch",
    "evaluate_iter",
    "fingerprint_pred",
    "mapping_to_pred",
    "normalize",
    "order_children",
    "resolve_universe",
    "specialize",
    "translate",
    "warn_mapping_adapter",
]
