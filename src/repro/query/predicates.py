"""The predicate algebra: one composable query AST.

The paper's indexes answer one-dimensional alphabet range queries;
real workloads compose them — warehouse-style star queries are built
from IN-lists, disjunctions, and negations over secondary columns.
This module defines the composable surface every serving layer speaks:

* :class:`Range` — ``column ∈ [lo, hi]`` with either bound open
  (``None``);
* :class:`Eq` — ``column == value`` (sugar for a one-point range);
* :class:`In` — ``column ∈ {v1, v2, ...}`` (membership);
* :class:`And` / :class:`Or` / :class:`Not` — boolean combination;
* :data:`TRUE` / :data:`FALSE` — the constants normalization folds
  degenerate predicates into.

The same classes carry *value-space* predicates (what ``Table`` /
``ShardedTable`` accept — bounds and members are arbitrary ordered
values) and *code-space* predicates (what the engines serve — bounds
are dense integer codes).  :func:`translate` maps the former to the
latter through each column's :class:`~repro.model.alphabet.Alphabet`
(§1.1's dictionary), and :func:`normalize` rewrites any code-space
predicate into the canonical form the planner compiles:

* negation-normal form: ``Not`` pushed through ``And``/``Or`` by
  De Morgan until it wraps only ``Range`` leaves;
* ``Eq`` → a one-point ``Range``; ``In`` → its sorted distinct codes
  grouped into maximal consecutive *interval runs* (one range query
  per run, not per member);
* open/over-wide bounds clipped to the column's alphabet; a leaf that
  can match nothing folds to :data:`FALSE`, one that matches the whole
  column to :data:`TRUE`;
* per-column interval merging: inside an ``And``, positive ranges on
  one column intersect to a single interval and negated ranges merge
  into disjoint runs (a positive interval minus same-column negated
  runs is resolved *statically* into residual runs — no index bits
  are ever read for it); inside an ``Or``, positive ranges on one
  column merge into maximal runs (adjacent code intervals fuse:
  ``[0,2] ∨ [3,5] = [0,5]``) and negated ranges intersect;
* flattening, deduplication, and a deterministic child order, so
  equivalent predicates compile to identical plans and their leaves
  share cache entries ("disjuncts share cached legs").

Semantics are defined over the column's *position space*: ``Not`` and
:data:`TRUE` complement against every position the backends index.
Engine-level deletions that are pending compaction (``None`` holes)
match no positive leaf and therefore count as matches of ``Not`` —
table-level flows never create holes, so there value semantics and
position semantics coincide.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable

from ..errors import InvalidParameterError, QueryError


class Pred:
    """Base class of every predicate node.

    Nodes compose with ``&``, ``|`` and ``~`` as well as the explicit
    :class:`And`/:class:`Or`/:class:`Not` constructors.
    """

    __slots__ = ()

    def __and__(self, other: "Pred") -> "Pred":
        return And(self, other)

    def __or__(self, other: "Pred") -> "Pred":
        return Or(self, other)

    def __invert__(self) -> "Pred":
        return Not(self)

    def fingerprint(
        self,
        sigma_of: Callable[[str], int],
        *,
        epoch_of: "Callable[[str], Any] | None" = None,
    ) -> str:
        """A stable content hash of the normalized predicate.

        Equivalent predicates — ``a & b`` vs ``b & a``, adjacent
        intervals vs their fusion — normalize to the same canonical
        tree and therefore collide; non-equivalent ones don't.  The
        hash also covers the set of columns the *original* predicate
        mentions (simplified-away leaves still pin their column's row
        universe) and, when ``epoch_of`` is given, each column's
        dictionary epoch — so a key minted before a column was dropped
        and re-added can never alias the new incarnation.  Suitable as
        a single-flight coalescing or result-cache key.
        """
        return fingerprint_pred(self, sigma_of, epoch_of=epoch_of)


class _Bool(Pred):
    """The constant predicates (normalization results, not user input)."""

    __slots__ = ("_value",)

    def __init__(self, value: bool) -> None:
        self._value = value

    def __repr__(self) -> str:
        return "TRUE" if self._value else "FALSE"

    def __bool__(self) -> bool:
        return self._value


#: Matches every position.  Normalization folds e.g. a fully open
#: range over a whole column into this; it costs no index bits.
TRUE = _Bool(True)
#: Matches no position (e.g. an ``In`` over values that never occur).
FALSE = _Bool(False)


class Range(Pred):
    """``column ∈ [lo, hi]`` (inclusive); either bound may be open."""

    __slots__ = ("column", "lo", "hi")

    def __init__(self, column: str, lo: Any = None, hi: Any = None) -> None:
        if not isinstance(column, str):
            raise InvalidParameterError("Range column must be a string")
        self.column = column
        self.lo = lo
        self.hi = hi

    def __repr__(self) -> str:
        return f"Range({self.column!r}, {self.lo!r}, {self.hi!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Range)
            and (self.column, self.lo, self.hi)
            == (other.column, other.lo, other.hi)
        )

    def __hash__(self) -> int:
        return hash(("Range", self.column, self.lo, self.hi))


class Eq(Pred):
    """``column == value`` — sugar for the one-point range."""

    __slots__ = ("column", "value")

    def __init__(self, column: str, value: Any) -> None:
        if not isinstance(column, str):
            raise InvalidParameterError("Eq column must be a string")
        self.column = column
        self.value = value

    def __repr__(self) -> str:
        return f"Eq({self.column!r}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Eq) and (self.column, self.value) == (
            other.column,
            other.value,
        )

    def __hash__(self) -> int:
        return hash(("Eq", self.column, self.value))


class In(Pred):
    """``column ∈ values`` — membership in an explicit set."""

    __slots__ = ("column", "values")

    def __init__(self, column: str, values: Iterable[Any]) -> None:
        if not isinstance(column, str):
            raise InvalidParameterError("In column must be a string")
        self.column = column
        self.values = tuple(values)

    def __repr__(self) -> str:
        return f"In({self.column!r}, {list(self.values)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, In) and (self.column, self.values) == (
            other.column,
            other.values,
        )

    def __hash__(self) -> int:
        return hash(("In", self.column, self.values))


def _check_parts(kind: str, parts: tuple) -> tuple:
    if not parts:
        raise InvalidParameterError(f"{kind} needs at least one part")
    for part in parts:
        if not isinstance(part, Pred):
            raise InvalidParameterError(
                f"{kind} parts must be predicates, got {type(part).__name__}"
            )
    return parts


class And(Pred):
    """Conjunction of one or more predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Pred) -> None:
        self.parts = _check_parts("And", parts)

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.parts))})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))


class Or(Pred):
    """Disjunction of one or more predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Pred) -> None:
        self.parts = _check_parts("Or", parts)

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.parts))})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("Or", self.parts))


class Not(Pred):
    """Negation of a predicate."""

    __slots__ = ("part",)

    def __init__(self, part: Pred) -> None:
        if not isinstance(part, Pred):
            raise InvalidParameterError(
                f"Not takes a predicate, got {type(part).__name__}"
            )
        self.part = part

    def __repr__(self) -> str:
        return f"Not({self.part!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.part == other.part

    def __hash__(self) -> int:
        return hash(("Not", self.part))


def columns_of(pred: Pred) -> set[str]:
    """Every column name a predicate mentions (before simplification)."""
    if isinstance(pred, (Range, Eq, In)):
        return {pred.column}
    if isinstance(pred, Not):
        return columns_of(pred.part)
    if isinstance(pred, (And, Or)):
        out: set[str] = set()
        for part in pred.parts:
            out |= columns_of(part)
        return out
    if isinstance(pred, _Bool):
        return set()
    raise QueryError(f"unknown predicate node {type(pred).__name__}")


# ----------------------------------------------------------------------
# Value space -> code space (§1.1's dictionary, applied to predicates)
# ----------------------------------------------------------------------


def translate(pred: Pred, alphabet_of: Callable[[str], Any]) -> Pred:
    """Map a value-space predicate onto dense code space.

    ``alphabet_of(column)`` returns the column's
    :class:`~repro.model.alphabet.Alphabet` (and raises
    :class:`~repro.errors.QueryError` for unknown columns).  Leaves
    translate with the floor/ceiling semantics of ``code_range``: a
    value range covers every *occurring* value inside it, a range or
    membership that covers none folds to :data:`FALSE` (under a
    ``Not``, normalization later flips it to :data:`TRUE`).
    """
    if isinstance(pred, _Bool):
        return pred
    if isinstance(pred, Eq):
        alphabet = alphabet_of(pred.column)
        if pred.value not in alphabet:
            return In(pred.column, ())  # empty, but still names its column
        code = alphabet.code(pred.value)
        return Range(pred.column, code, code)
    if isinstance(pred, In):
        alphabet = alphabet_of(pred.column)
        codes = sorted(
            {alphabet.code(v) for v in pred.values if v in alphabet}
        )
        # An empty membership stays an (empty) leaf rather than FALSE
        # so the compiled plan still knows which column's row universe
        # it answers against.
        return In(pred.column, codes)
    if isinstance(pred, Range):
        alphabet = alphabet_of(pred.column)
        interval = alphabet.code_interval(pred.lo, pred.hi)
        if interval is None:
            return In(pred.column, ())
        return Range(pred.column, *interval)
    if isinstance(pred, Not):
        return Not(translate(pred.part, alphabet_of))
    if isinstance(pred, And):
        return And(*(translate(p, alphabet_of) for p in pred.parts))
    if isinstance(pred, Or):
        return Or(*(translate(p, alphabet_of) for p in pred.parts))
    raise QueryError(f"unknown predicate node {type(pred).__name__}")


# ----------------------------------------------------------------------
# Normalization (code space)
# ----------------------------------------------------------------------


def _codes_to_runs(codes: list[int]) -> list[tuple[int, int]]:
    """Sorted distinct codes -> maximal consecutive interval runs."""
    runs: list[tuple[int, int]] = []
    for c in codes:
        if runs and c == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], c)
        else:
            runs.append((c, c))
    return runs


def _merge_runs(
    intervals: Iterable[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Overlapping/adjacent code intervals -> disjoint maximal runs."""
    out: list[tuple[int, int]] = []
    for lo, hi in sorted(intervals):
        if out and lo <= out[-1][1] + 1:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _subtract_runs(
    interval: tuple[int, int], holes: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """One interval minus disjoint sorted hole runs -> residual runs."""
    lo, hi = interval
    out: list[tuple[int, int]] = []
    cursor = lo
    for h_lo, h_hi in holes:
        if h_hi < cursor:
            continue
        if h_lo > hi:
            break
        if h_lo > cursor:
            out.append((cursor, h_lo - 1))
        cursor = max(cursor, h_hi + 1)
        if cursor > hi:
            break
    if cursor <= hi:
        out.append((cursor, hi))
    return out


def _leaf_interval(
    pred: "Range | Eq | In", sigma: int
) -> list[tuple[int, int]]:
    """A leaf's matching code intervals, clipped to ``[0, sigma)``."""
    if isinstance(pred, Eq):
        v = pred.value
        _require_code(pred, v)
        return [(v, v)] if 0 <= v < sigma else []
    if isinstance(pred, In):
        codes = set()
        for v in pred.values:
            _require_code(pred, v)
            if 0 <= v < sigma:
                codes.add(v)
        return _codes_to_runs(sorted(codes))
    lo = 0 if pred.lo is None else pred.lo
    hi = sigma - 1 if pred.hi is None else pred.hi
    _require_code(pred, lo)
    _require_code(pred, hi)
    lo, hi = max(lo, 0), min(hi, sigma - 1)
    return [(lo, hi)] if lo <= hi else []


def _require_code(pred: Pred, value: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise QueryError(
            f"code-space predicate {pred!r} carries non-integer bound "
            f"{value!r}; translate value-space predicates through the "
            "table layer"
        )


def _sort_key(pred: Pred) -> tuple:
    """Deterministic child ordering: leaves first, then composites."""
    if isinstance(pred, Range):
        return (0, pred.column, pred.lo, pred.hi)
    if isinstance(pred, Not):  # normalized: always Not(Range)
        inner = pred.part
        return (1, inner.column, inner.lo, inner.hi)
    if isinstance(pred, And):
        return (2, repr(pred))
    if isinstance(pred, Or):
        return (3, repr(pred))
    return (4, repr(pred))


def normalize(pred: Pred, sigma_of: Callable[[str], int]) -> Pred:
    """Rewrite a code-space predicate into canonical normal form.

    ``sigma_of(column)`` returns the column's alphabet size (raising
    :class:`~repro.errors.QueryError` for unknown columns — every leaf
    is resolved eagerly, even ones simplification would discard).  The
    result is :data:`TRUE`, :data:`FALSE`, or a tree of ``And`` / ``Or``
    over ``Range`` and ``Not(Range)`` leaves with closed integer
    bounds inside ``[0, sigma)``, flattened, deduplicated,
    same-column-merged and deterministically ordered.
    """
    return _norm(pred, False, sigma_of)


def _norm(
    pred: Pred, negated: bool, sigma_of: Callable[[str], int]
) -> Pred:
    if isinstance(pred, _Bool):
        value = bool(pred) != negated
        return TRUE if value else FALSE
    if isinstance(pred, Not):
        return _norm(pred.part, not negated, sigma_of)
    if isinstance(pred, (Range, Eq, In)):
        sigma = sigma_of(pred.column)
        runs = _leaf_interval(pred, sigma)
        if not runs:
            return TRUE if negated else FALSE
        if runs == [(0, sigma - 1)]:
            return FALSE if negated else TRUE
        leaves = [Range(pred.column, lo, hi) for lo, hi in runs]
        if negated:
            # ~(r1 | r2 | ...) = ~r1 & ~r2 & ...
            parts = [Not(leaf) for leaf in leaves]
            return (
                parts[0] if len(parts) == 1
                else _combine_and(parts, sigma_of)
            )
        return (
            leaves[0] if len(leaves) == 1
            else _combine_or(leaves, sigma_of)
        )
    if isinstance(pred, (And, Or)):
        children = [_norm(p, negated, sigma_of) for p in pred.parts]
        conjunctive = isinstance(pred, And) != negated  # De Morgan
        if conjunctive:
            return _combine_and(children, sigma_of)
        return _combine_or(children, sigma_of)
    raise QueryError(f"unknown predicate node {type(pred).__name__}")


def _flatten(children: list[Pred], kind: type) -> list[Pred]:
    flat: list[Pred] = []
    for child in children:
        if isinstance(child, kind):
            flat.extend(child.parts)
        else:
            flat.append(child)
    return flat


def _finish(children: list[Pred], kind: type) -> Pred:
    """Dedupe, order, and collapse a combined node's children."""
    seen: set = set()
    out: list[Pred] = []
    for child in sorted(children, key=_sort_key):
        if child not in seen:
            seen.add(child)
            out.append(child)
    if not out:
        return TRUE if kind is And else FALSE
    if len(out) == 1:
        return out[0]
    return kind(*out)


def _combine_and(
    children: list[Pred], sigma_of: Callable[[str], int]
) -> Pred:
    children = _flatten(children, And)
    if any(c is FALSE for c in children):
        return FALSE
    children = [c for c in children if c is not TRUE]
    # Per-column merging: positive intervals intersect, negated
    # intervals merge into disjoint runs, and a positive interval
    # minus same-column negated runs resolves statically.
    pos: dict[str, tuple[int, int]] = {}
    neg: dict[str, list[tuple[int, int]]] = {}
    rest: list[Pred] = []
    for child in children:
        if isinstance(child, Range):
            col = child.column
            if col in pos:
                lo = max(pos[col][0], child.lo)
                hi = min(pos[col][1], child.hi)
                if lo > hi:
                    return FALSE
                pos[col] = (lo, hi)
            else:
                pos[col] = (child.lo, child.hi)
        elif isinstance(child, Not) and isinstance(child.part, Range):
            inner = child.part
            neg.setdefault(inner.column, []).append((inner.lo, inner.hi))
        else:
            rest.append(child)
    merged: list[Pred] = []
    for col, interval in pos.items():
        holes = _merge_runs(neg.pop(col, []))
        runs = _subtract_runs(interval, holes) if holes else [interval]
        if not runs:
            return FALSE
        leaves = [Range(col, lo, hi) for lo, hi in runs]
        merged.append(
            leaves[0] if len(leaves) == 1 else _finish(leaves, Or)
        )
    for col, intervals in neg.items():
        for lo, hi in _merge_runs(intervals):
            if (lo, hi) == (0, sigma_of(col) - 1):
                # The merged negations cover the whole alphabet:
                # ~(full column) matches nothing (the same fold a
                # single full-range leaf gets, so equivalent
                # predicates stay equivalent).
                return FALSE
            merged.append(Not(Range(col, lo, hi)))
    return _finish(merged + rest, And)


def _combine_or(
    children: list[Pred], sigma_of: Callable[[str], int]
) -> Pred:
    children = _flatten(children, Or)
    if any(c is TRUE for c in children):
        return TRUE
    children = [c for c in children if c is not FALSE]
    # Per-column merging: positive intervals fuse into maximal runs
    # (adjacent code intervals too), negated intervals intersect
    # (~A | ~B = ~(A & B)).
    pos: dict[str, list[tuple[int, int]]] = {}
    neg: dict[str, tuple[int, int]] = {}
    rest: list[Pred] = []
    for child in children:
        if isinstance(child, Range):
            pos.setdefault(child.column, []).append((child.lo, child.hi))
        elif isinstance(child, Not) and isinstance(child.part, Range):
            inner = child.part
            col = inner.column
            if col in neg:
                lo = max(neg[col][0], inner.lo)
                hi = min(neg[col][1], inner.hi)
                if lo > hi:
                    return TRUE  # ~∅ — the disjunction is everything
                neg[col] = (lo, hi)
            else:
                neg[col] = (inner.lo, inner.hi)
        else:
            rest.append(child)
    merged: list[Pred] = []
    for col, intervals in pos.items():
        for lo, hi in _merge_runs(intervals):
            if (lo, hi) == (0, sigma_of(col) - 1):
                # The merged runs cover the whole alphabet — the same
                # TRUE fold a single full-range leaf gets, so
                # equivalent predicates stay equivalent (position-
                # space semantics, including pending-delete holes).
                return TRUE
            merged.append(Range(col, lo, hi))
    for col, (lo, hi) in neg.items():
        merged.append(Not(Range(col, lo, hi)))
    return _finish(merged + rest, Or)


# ----------------------------------------------------------------------
# Fingerprints (coalescing / cache keys)
# ----------------------------------------------------------------------


def _fp_token(pred: Pred) -> tuple:
    """Canonical nested-tuple serialization of a *normalized* tree.

    Only the node types normalization can emit appear here; the tuple
    contains nothing but strings and ints, so its ``repr`` is stable
    across processes (no ``PYTHONHASHSEED`` dependence).
    """
    if isinstance(pred, _Bool):
        return ("T",) if pred else ("F",)
    if isinstance(pred, Range):
        return ("R", pred.column, pred.lo, pred.hi)
    if isinstance(pred, Not):
        return ("N", _fp_token(pred.part))
    if isinstance(pred, And):
        return ("A",) + tuple(_fp_token(p) for p in pred.parts)
    if isinstance(pred, Or):
        return ("O",) + tuple(_fp_token(p) for p in pred.parts)
    raise QueryError(f"unknown predicate node {type(pred).__name__}")


def fingerprint_pred(
    pred: Pred,
    sigma_of: Callable[[str], int],
    *,
    epoch_of: "Callable[[str], Any] | None" = None,
) -> str:
    """Hash a code-space predicate's canonical form (see
    :meth:`Pred.fingerprint`)."""
    normalized = normalize(pred, sigma_of)
    columns = sorted(columns_of(pred))
    if epoch_of is not None:
        scope: tuple = tuple((c, str(epoch_of(c))) for c in columns)
    else:
        scope = tuple(columns)
    payload = repr((scope, _fp_token(normalized)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]
