"""Streaming combinators over sorted position iterators.

The iterator half of the plan executor: every combinator consumes
iterators of strictly increasing positions and yields a strictly
increasing stream, holding O(k) cursors — never a materialized list —
so the cluster's bounded-memory gather guarantees survive arbitrary
predicate shapes.  Abandoned pipelines propagate ``close()`` to their
producers (the prefetching gather relies on it to drain in-flight
fetches deterministically).
"""

from __future__ import annotations

import heapq


def _close_all(iters) -> None:
    for it in iters:
        close = getattr(it, "close", None)
        if close is not None:
            close()


def intersect_iters(iters: list):
    """K-way merge-intersect: positions present in *every* stream.

    The §1 conjunctive merge: one cursor per stream, laggards advance
    to the frontier, a position is emitted only when all agree.  Any
    stream running dry ends the whole intersection (the streaming form
    of the empty-dimension short-circuit).
    """
    if not iters:
        raise ValueError("intersect_iters needs at least one iterator")

    def gen():
        sentinel = object()
        try:
            heads = []
            for it in iters:
                head = next(it, sentinel)
                if head is sentinel:
                    return
                heads.append(head)
            while True:
                frontier = max(heads)
                aligned = True
                for i, it in enumerate(iters):
                    while heads[i] < frontier:
                        head = next(it, sentinel)
                        if head is sentinel:
                            return
                        heads[i] = head
                    if heads[i] > frontier:
                        aligned = False
                if not aligned:
                    continue
                yield frontier
                for i, it in enumerate(iters):
                    head = next(it, sentinel)
                    if head is sentinel:
                        return
                    heads[i] = head
        finally:
            _close_all(iters)

    return gen()


def union_iters(iters: list):
    """K-way merge-union: positions present in *any* stream, deduped.

    The disjunctive counterpart of :func:`intersect_iters` — a heap
    merge over the streams with equal positions collapsed, so an
    ``Or`` emits each matching position exactly once, in order.
    """
    if not iters:
        raise ValueError("union_iters needs at least one iterator")

    def gen():
        try:
            last = None
            for p in heapq.merge(*iters):
                if last is None or p != last:
                    yield p
                    last = p
        finally:
            _close_all(iters)

    return gen()


def difference_iter(positive, negative):
    """Positions of ``positive`` absent from ``negative`` (both sorted).

    The streaming ``A - B``: how an ``And`` subtracts its negated
    children without materializing any complement — the negative
    stream is walked in lockstep and only as far as the positive one
    reaches.
    """

    def gen():
        sentinel = object()
        try:
            bad = next(negative, sentinel)
            for p in positive:
                while bad is not sentinel and bad < p:
                    bad = next(negative, sentinel)
                if bad is sentinel or bad != p:
                    yield p
        finally:
            _close_all((positive, negative))

    return gen()


def count_iter(it) -> int:
    """Drain a position stream and return how many positions it held.

    The materialize-then-count baseline the aggregate path is measured
    against: every position still flows through the pipeline, it just
    isn't kept.
    """
    count = 0
    try:
        for _ in it:
            count += 1
    finally:
        _close_all((it,))
    return count


def first(it):
    """The first position of a stream, or ``None`` when it is empty.

    Pulls at most one element and closes the pipeline either way —
    the streaming counterpart of ``exists`` (non-``None`` means the
    predicate matches something).
    """
    sentinel = object()
    try:
        head = next(it, sentinel)
    finally:
        _close_all((it,))
    return None if head is sentinel else head


def complement_iter(it, universe: int):
    """Every position of ``[0, universe)`` absent from the stream.

    O(1) extra memory, but the output is inherently O(universe - z)
    long — the executor reaches for it only when a ``Not`` has no
    positive sibling to subtract from (a top-level ``Not``'s answer
    really is almost everything).
    """

    def gen():
        sentinel = object()
        try:
            cursor = 0
            for p in it:
                while cursor < p:
                    yield cursor
                    cursor += 1
                cursor = p + 1
            while cursor < universe:
                yield cursor
                cursor += 1
        finally:
            _close_all((it,))

    return gen()
