"""The deprecated mapping-of-tuples adapters.

Every serving layer used to accept conjunctions as
``{column: (lo, hi)}`` mappings; the predicate algebra subsumes that
shape as ``And(Range(column, lo, hi), ...)``.  The old signature keeps
working through :func:`mapping_to_pred`, but each *call site* is told
exactly once — via :func:`warn_mapping_adapter` — that it is on the
compatibility path (the default warning filters dedupe per module
line only as long as ``__warningregistry__`` survives, so the adapter
keeps its own registry keyed by caller location).
"""

from __future__ import annotations

import sys
import warnings
from typing import Mapping

from ..errors import QueryError
from .predicates import And, Pred, Range

#: Call sites already warned: ``(filename, lineno)`` of the caller.
_WARNED: set[tuple[str, int]] = set()


def warn_mapping_adapter(api: str) -> None:
    """Emit the adapter's DeprecationWarning once per call site.

    Must be called directly from the public adapter method; the call
    site charged is that method's caller.
    """
    frame = sys._getframe(2)
    key = (frame.f_code.co_filename, frame.f_lineno)
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"{api} with a {{column: (lo, hi)}} mapping is deprecated; "
        "pass a predicate instead, e.g. "
        "And(Range(column, lo, hi), ...) from repro.query",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_warned_call_sites() -> None:
    """Forget every warned call site (test isolation hook)."""
    _WARNED.clear()


def mapping_to_pred(conditions: Mapping) -> Pred:
    """The legacy conjunction mapping as a predicate.

    Preserves the old contract: at least one condition, each a
    ``(lo, hi)`` pair.
    """
    if not conditions:
        raise QueryError("select requires at least one condition")
    parts = []
    for column, bounds in conditions.items():
        try:
            lo, hi = bounds
        except (TypeError, ValueError):
            raise QueryError(
                f"condition for {column!r} must be a (lo, hi) pair, "
                f"got {bounds!r}"
            ) from None
        parts.append(Range(column, lo, hi))
    return parts[0] if len(parts) == 1 else And(*parts)
