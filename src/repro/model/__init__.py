"""Alphabets, entropy bounds, and workload generators."""

from .alphabet import Alphabet
from .distributions import (
    DISTRIBUTIONS,
    by_name,
    clustered,
    heavy_hitter,
    markov_runs,
    sequential,
    uniform,
    zipf,
)
from .entropy import (
    char_counts,
    entropy_bits,
    h0,
    h0_from_counts,
    lg_binomial,
    output_bound_bits,
    set_bound_bits,
)

__all__ = [
    "Alphabet",
    "DISTRIBUTIONS",
    "by_name",
    "char_counts",
    "clustered",
    "entropy_bits",
    "h0",
    "h0_from_counts",
    "heavy_hitter",
    "lg_binomial",
    "markov_runs",
    "output_bound_bits",
    "sequential",
    "set_bound_bits",
    "uniform",
    "zipf",
]
