"""Workload string generators.

The paper motivates its structures with OLAP, information-retrieval and
scientific workloads (§1): attributes with uniform, skewed (Zipf),
clustered, and run-heavy distributions.  These generators produce the
strings every experiment indexes; all take a ``seed`` so the benchmark
tables are reproducible run to run.

Every generator returns a list of dense character codes in
``[0, sigma)`` of length ``n``.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Callable

from ..errors import InvalidParameterError

Generator = Callable[..., list[int]]


def _check(n: int, sigma: int) -> None:
    if n < 0:
        raise InvalidParameterError("n must be >= 0")
    if sigma <= 0:
        raise InvalidParameterError("sigma must be >= 1")


def uniform(n: int, sigma: int, seed: int = 0) -> list[int]:
    """Each position drawn independently and uniformly from the alphabet."""
    _check(n, sigma)
    rng = random.Random(seed)
    return [rng.randrange(sigma) for _ in range(n)]


def zipf(n: int, sigma: int, theta: float = 1.0, seed: int = 0) -> list[int]:
    """Zipf-distributed characters: ``P(code k) ∝ 1 / (k+1)^theta``.

    ``theta = 0`` degenerates to uniform; larger ``theta`` concentrates
    mass on low codes, driving ``H0`` well below ``lg sigma`` — the
    regime where Theorem 2's entropy-bounded space separates from the
    ``O(n lg^2 sigma)`` bound of Theorem 1.
    """
    _check(n, sigma)
    if theta < 0:
        raise InvalidParameterError("theta must be >= 0")
    rng = random.Random(seed)
    weights = [1.0 / (k + 1) ** theta for k in range(sigma)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    out = []
    for _ in range(n):
        r = rng.random() * total
        out.append(bisect.bisect_left(cumulative, r))
    return out


def heavy_hitter(
    n: int, sigma: int, fraction: float = 0.6, hot: int = 0, seed: int = 0
) -> list[int]:
    """One character receives ``fraction`` of all positions.

    Exercises the heavy-character handling of §2.2 ("no character has
    more than n/2 occurrences ... otherwise expand the alphabet"): with
    ``fraction > 0.5`` a single character dominates the string.
    """
    _check(n, sigma)
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError("fraction must be in [0, 1]")
    if not 0 <= hot < sigma:
        raise InvalidParameterError("hot character outside the alphabet")
    rng = random.Random(seed)
    others = [c for c in range(sigma) if c != hot] or [hot]
    return [
        hot if rng.random() < fraction else rng.choice(others) for _ in range(n)
    ]


def clustered(n: int, sigma: int, seed: int = 0) -> list[int]:
    """A sorted string with noise-free contiguous runs per character.

    Models a clustered attribute (e.g. data loaded in key order), the
    best case for run-length-compressed bitmaps.
    """
    _check(n, sigma)
    rng = random.Random(seed)
    # Random cut points split [0, n) into sigma contiguous (possibly
    # empty) runs, one per character in order.
    cuts = sorted(rng.randrange(n + 1) for _ in range(sigma - 1))
    bounds = [0, *cuts, n]
    out: list[int] = []
    for code in range(sigma):
        out.extend([code] * (bounds[code + 1] - bounds[code]))
    return out


def markov_runs(
    n: int, sigma: int, stay: float = 0.9, seed: int = 0
) -> list[int]:
    """A two-state-per-symbol Markov chain: repeat with probability ``stay``.

    Produces bursty strings whose per-character bitmaps have long runs —
    the workload where run-length encoding shines (§1.2).
    """
    _check(n, sigma)
    if not 0.0 <= stay < 1.0:
        raise InvalidParameterError("stay probability must be in [0, 1)")
    rng = random.Random(seed)
    out: list[int] = []
    current = rng.randrange(sigma)
    for _ in range(n):
        if rng.random() >= stay:
            current = rng.randrange(sigma)
        out.append(current)
    return out


def sequential(n: int, sigma: int, seed: int = 0) -> list[int]:
    """Round-robin characters: position ``i`` holds ``i mod sigma``.

    The exactly-uniform workload of §1.2's lower-bound example (each
    character occurs ``n / sigma`` times).
    """
    _check(n, sigma)
    return [i % sigma for i in range(n)]


DISTRIBUTIONS: dict[str, Generator] = {
    "uniform": uniform,
    "zipf": zipf,
    "heavy_hitter": heavy_hitter,
    "clustered": clustered,
    "markov_runs": markov_runs,
    "sequential": sequential,
}


def by_name(name: str) -> Generator:
    """Look up a generator by its registry name."""
    try:
        return DISTRIBUTIONS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown distribution {name!r}; choose from {sorted(DISTRIBUTIONS)}"
        ) from None
