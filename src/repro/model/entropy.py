"""Information-theoretic yardsticks used throughout the paper.

Every space bound in the paper is stated against one of two baselines:

* ``n * H0(x)`` — the 0th-order empirical entropy of the string
  (Theorems 2-7);
* ``lg C(n, m)`` — the minimum space for a bitmap of cardinality ``m``
  over a universe of ``n`` (§1.2), which the gap/gamma coding matches
  within a constant factor.

Benchmarks report measured sizes as ratios against these quantities.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping, Sequence

from ..errors import InvalidParameterError

_LN2 = math.log(2.0)


def char_counts(x: Iterable[int]) -> Counter[int]:
    """Occurrence counts per character code."""
    return Counter(x)


def h0_from_counts(counts: Mapping[int, int] | Sequence[int]) -> float:
    """0th-order entropy in bits per symbol from occurrence counts."""
    if isinstance(counts, Mapping):
        values = [c for c in counts.values() if c]
    else:
        values = [c for c in counts if c]
    n = sum(values)
    if n == 0:
        return 0.0
    if any(c < 0 for c in values):
        raise InvalidParameterError("counts must be non-negative")
    h = 0.0
    for c in values:
        p = c / n
        h -= p * math.log2(p)
    return h


def h0(x: Sequence[int]) -> float:
    """0th-order entropy of a string, in bits per symbol."""
    return h0_from_counts(char_counts(x))


def entropy_bits(x: Sequence[int]) -> float:
    """``n * H0(x)`` — the paper's space baseline in total bits."""
    return len(x) * h0(x)


def lg_binomial(n: int, m: int) -> float:
    """``lg C(n, m)`` computed stably via ``lgamma``.

    This is the information-theoretic minimum number of bits to
    represent a set of ``m`` elements out of ``n`` (§1.2).
    """
    if m < 0 or n < 0 or m > n:
        raise InvalidParameterError("need 0 <= m <= n")
    if m == 0 or m == n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(m + 1) - math.lgamma(n - m + 1)
    ) / _LN2


def set_bound_bits(n: int, m: int) -> float:
    """``m lg(n/m) + Theta(m)`` — the sparse-bitmap bound of §1.2.

    Uses the exact binomial, which the asymptotic expression stands for.
    """
    return lg_binomial(n, m)


def output_bound_bits(n: int, z: int) -> float:
    """Minimum bits for a query answer of cardinality ``z`` (§1.1).

    The paper's structures answer with ``O(lg C(n, z))`` bits; query
    I/O optimality is measured against this divided by ``B``.
    """
    z = min(z, n - z) if n else 0  # complement trick: answer or its complement
    return lg_binomial(n, max(z, 0))
