"""Mapping arbitrary ordered values onto the dense alphabet ``[0, sigma)``.

The paper assumes without loss of generality that ``sigma <= n``: "if it
is larger, use a dictionary to map to a smaller alphabet" (§1.1).  This
module is that dictionary.  Indexes operate on dense integer codes; user
queries arrive in value space and are translated with the floor/ceiling
semantics a secondary index needs (a range ``[lo, hi]`` in value space
covers every *occurring* value within it, whether or not the endpoints
occur).
"""

from __future__ import annotations

import bisect
from typing import Generic, Hashable, Iterable, Sequence, TypeVar

from ..errors import InvalidParameterError, QueryError

V = TypeVar("V", bound=Hashable)


class Alphabet(Generic[V]):
    """A bijection between occurring values and codes ``0..sigma-1``.

    Values must be mutually comparable (a totally ordered domain such as
    ints, floats, strings, dates).
    """

    __slots__ = ("_values", "_code_of")

    def __init__(self, values: Iterable[V]) -> None:
        distinct = sorted(set(values))
        if not distinct:
            raise InvalidParameterError("alphabet cannot be empty")
        self._values: list[V] = distinct
        self._code_of = {v: c for c, v in enumerate(distinct)}

    @classmethod
    def from_string(cls, x: Sequence[V]) -> "Alphabet[V]":
        """Build the alphabet of the values occurring in ``x``."""
        return cls(x)

    @property
    def sigma(self) -> int:
        """Alphabet size."""
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: V) -> bool:
        return value in self._code_of

    def code(self, value: V) -> int:
        """The dense code of an occurring value."""
        try:
            return self._code_of[value]
        except KeyError:
            raise QueryError(f"value {value!r} does not occur") from None

    def value(self, code: int) -> V:
        """The value a dense code stands for."""
        if code < 0 or code >= len(self._values):
            raise QueryError(f"code {code} outside [0, {len(self._values)})")
        return self._values[code]

    def encode(self, x: Iterable[V]) -> list[int]:
        """Encode a sequence of occurring values into codes."""
        code_of = self._code_of
        try:
            return [code_of[v] for v in x]
        except KeyError as exc:
            raise QueryError(f"value {exc.args[0]!r} does not occur") from None

    def decode(self, codes: Iterable[int]) -> list[V]:
        """Decode a sequence of codes back into values."""
        return [self.value(c) for c in codes]

    def code_range(self, lo: V, hi: V) -> tuple[int, int] | None:
        """Translate a value range ``[lo, hi]`` into a code range.

        Returns ``None`` when no occurring value falls inside the range
        (the query answer is empty); otherwise the inclusive code pair.
        """
        if hi < lo:  # type: ignore[operator]
            raise QueryError("range upper bound below lower bound")
        left = bisect.bisect_left(self._values, lo)
        right = bisect.bisect_right(self._values, hi) - 1
        if left > right:
            return None
        return left, right

    def code_interval(
        self, lo: V | None = None, hi: V | None = None
    ) -> tuple[int, int] | None:
        """:meth:`code_range` with either bound open (``None``).

        The predicate algebra's translation primitive: ``lo=None``
        means "from the smallest occurring value", ``hi=None`` "to the
        largest".  Returns ``None`` when no occurring value satisfies
        both bounds.
        """
        if lo is not None and hi is not None:
            return self.code_range(lo, hi)
        left = 0 if lo is None else bisect.bisect_left(self._values, lo)
        right = (
            len(self._values) - 1
            if hi is None
            else bisect.bisect_right(self._values, hi) - 1
        )
        if left > right:
            return None
        return left, right

    def values(self) -> list[V]:
        """All occurring values in increasing order."""
        return list(self._values)
