"""Elias gamma and delta codes (Elias 1975, the paper's reference [12]).

The paper compresses each bitmap by run-length encoding the 0-runs with
gamma codes (§1.2), and stores position-gap lists with gamma codes in
the dynamic structures (§4.2).  A gamma code for ``v >= 1`` spends
``2*floor(lg v) + 1`` bits: the length of ``v`` in unary, then the low
bits of ``v``.  Delta codes (gamma-coded length) are provided for
completeness and for the directory fields where values can be large.

These per-code readers are the reference decode path; the batch hot
path (``ebitmap.decode_gaps``) dispatches whole gap *streams* to the
chunked accumulator kernel in :mod:`repro.bits.kernels` under
``REPRO_KERNEL=fast``.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from .bitio import BitReader, BitWriter


def gamma_length(value: int) -> int:
    """Bits used by the gamma code of ``value`` (``value >= 1``)."""
    if value < 1:
        raise InvalidParameterError("gamma codes are defined for values >= 1")
    return 2 * value.bit_length() - 1


def write_gamma(writer: BitWriter, value: int) -> None:
    """Append the gamma code of ``value >= 1`` to ``writer``."""
    if value < 1:
        raise InvalidParameterError("gamma codes are defined for values >= 1")
    n = value.bit_length()
    # Unary length: (n-1) zeros then a 1 -- equivalently the number 1 in n bits.
    writer.write_unary(n - 1)
    if n > 1:
        writer.write_bits(value & ((1 << (n - 1)) - 1), n - 1)


def read_gamma(reader: BitReader) -> int:
    """Consume one gamma code and return its value."""
    zeros = reader.read_unary()
    if zeros == 0:
        return 1
    return (1 << zeros) | reader.read_bits(zeros)


def delta_length(value: int) -> int:
    """Bits used by the delta code of ``value`` (``value >= 1``)."""
    if value < 1:
        raise InvalidParameterError("delta codes are defined for values >= 1")
    n = value.bit_length()
    return gamma_length(n) + (n - 1)


def write_delta(writer: BitWriter, value: int) -> None:
    """Append the delta code of ``value >= 1`` to ``writer``."""
    if value < 1:
        raise InvalidParameterError("delta codes are defined for values >= 1")
    n = value.bit_length()
    write_gamma(writer, n)
    if n > 1:
        writer.write_bits(value & ((1 << (n - 1)) - 1), n - 1)


def read_delta(reader: BitReader) -> int:
    """Consume one delta code and return its value."""
    n = read_gamma(reader)
    if n == 1:
        return 1
    return (1 << (n - 1)) | reader.read_bits(n - 1)
