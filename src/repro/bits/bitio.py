"""In-memory bit-stream reader and writer.

All codecs in this package (§1.2's gamma-coded run lengths, the gap
lists of §4.2, fixed-width directory fields) are built on these two
classes.  The bit order is MSB-first within each byte: the first bit
written is the most significant bit of the first byte.

``BitReader``'s window is the triple ``(_buf, _pos, _end)`` of buffer
and absolute bit positions.  The fast kernels in
:mod:`repro.bits.kernels` read and restore that window directly to
batch whole streams per call, so the representation is a package-level
contract, not a private detail of this module.
"""

from __future__ import annotations

from ..errors import CodecError, InvalidParameterError


class BitWriter:
    """Accumulates bits and yields a ``bytes`` payload.

    The writer keeps the logical bit length; :meth:`getvalue` pads the
    final partial byte with zero bits (the length, not the padding,
    is what downstream readers consume).
    """

    __slots__ = ("_bytes", "_acc", "_nacc")

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nacc = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bytes) * 8 + self._nacc

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the ``nbits``-bit big-endian representation of ``value``."""
        if nbits < 0:
            raise InvalidParameterError("nbits must be >= 0")
        if value < 0 or (nbits < value.bit_length()):
            raise InvalidParameterError(
                f"value {value} does not fit in {nbits} bits"
            )
        if nbits == 0:
            return
        acc = (self._acc << nbits) | value
        n = self._nacc + nbits
        out = self._bytes
        while n >= 8:
            n -= 8
            out.append((acc >> n) & 0xFF)
        self._acc = acc & ((1 << n) - 1)
        self._nacc = n

    def write_unary(self, zeros: int) -> None:
        """Append ``zeros`` 0-bits followed by a terminating 1-bit."""
        if zeros < 0:
            raise InvalidParameterError("unary argument must be >= 0")
        # The value 1 in a (zeros+1)-bit field is exactly the unary code.
        remaining = zeros + 1
        while remaining > 64:
            self.write_bits(0, 64)
            remaining -= 64
        self.write_bits(1, remaining)

    def extend(self, other: "BitWriter") -> None:
        """Append all bits of another writer to this one."""
        reader = BitReader(other.getvalue(), bit_length=other.bit_length)
        remaining = other.bit_length
        while remaining > 0:
            take = min(64, remaining)
            self.write_bits(reader.read_bits(take), take)
            remaining -= take

    def getvalue(self) -> bytes:
        """Return the payload, final partial byte zero-padded."""
        if self._nacc == 0:
            return bytes(self._bytes)
        tail = (self._acc << (8 - self._nacc)) & 0xFF
        return bytes(self._bytes) + bytes([tail])


class BitReader:
    """Sequential reader over a byte buffer, addressable at bit level.

    Parameters
    ----------
    buf:
        The backing bytes.
    bit_offset:
        Absolute bit position (within ``buf``) at which the stream
        starts.
    bit_length:
        Length of the readable window in bits; defaults to the rest of
        the buffer.
    """

    __slots__ = ("_buf", "_pos", "_end", "_start")

    def __init__(
        self, buf: bytes, bit_offset: int = 0, bit_length: int | None = None
    ) -> None:
        total = len(buf) * 8
        if bit_length is None:
            bit_length = total - bit_offset
        if bit_offset < 0 or bit_length < 0 or bit_offset + bit_length > total:
            raise InvalidParameterError("bit window outside the buffer")
        self._buf = buf
        self._start = bit_offset
        self._pos = bit_offset
        self._end = bit_offset + bit_length

    @property
    def remaining(self) -> int:
        """Bits left before the end of the window."""
        return self._end - self._pos

    def tell(self) -> int:
        """Current position relative to the start of the window."""
        return self._pos - self._start

    def seek(self, bit_position: int) -> None:
        """Jump to ``bit_position`` (relative to the window start)."""
        target = self._start + bit_position
        if target < self._start or target > self._end:
            raise InvalidParameterError("seek outside the bit window")
        self._pos = target

    def at_end(self) -> bool:
        """True when every bit of the window has been consumed."""
        return self._pos >= self._end

    def read_bits(self, nbits: int) -> int:
        """Consume ``nbits`` bits and return them as an unsigned integer."""
        if nbits < 0:
            raise InvalidParameterError("nbits must be >= 0")
        if nbits == 0:
            return 0
        pos = self._pos
        end = pos + nbits
        if end > self._end:
            raise CodecError("bit read past the end of the stream")
        first = pos >> 3
        last = (end - 1) >> 3
        chunk = int.from_bytes(self._buf[first : last + 1], "big")
        right = ((last + 1) << 3) - end
        self._pos = end
        return (chunk >> right) & ((1 << nbits) - 1)

    def peek_bits(self, nbits: int) -> int:
        """Like :meth:`read_bits` without consuming."""
        pos = self._pos
        value = self.read_bits(nbits)
        self._pos = pos
        return value

    def read_unary(self) -> int:
        """Consume a unary code (``q`` zeros then a one); return ``q``."""
        zeros = 0
        pos = self._pos
        buf = self._buf
        end = self._end
        while pos < end:
            take = min(64, end - pos)
            first = pos >> 3
            last = (pos + take - 1) >> 3
            chunk = int.from_bytes(buf[first : last + 1], "big")
            right = ((last + 1) << 3) - (pos + take)
            window = (chunk >> right) & ((1 << take) - 1)
            if window == 0:
                zeros += take
                pos += take
                continue
            lead = take - window.bit_length()
            zeros += lead
            self._pos = pos + lead + 1
            return zeros
        raise CodecError("unary code ran past the end of the stream")
