"""Algebra on sorted position lists.

The query algorithms of §2 compute unions of the (pairwise disjoint)
position sets of canonical subtrees; the RID-intersection application of
§1 intersects per-dimension answers; the complement trick of §2.1 turns
a large answer into the complement of two small ones.  These helpers
implement that algebra on plain sorted ``list[int]`` values, which is
the decoded form every bitmap class can produce.

Each base operation dispatches on :data:`repro.bits.kernels.USE_FAST`:
the loops written out below are the pure-Python *reference* kernels
(``REPRO_KERNEL=python``), and :mod:`.kernels` holds their
block-oriented twins built on C-backed ``set``/``sorted`` primitives
(``REPRO_KERNEL=fast``, the default).  The complement-aware and
counting combinators further down compose these base operations, so
they accelerate through the same switch without dispatching
themselves.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from . import kernels


def is_strictly_increasing(seq: Sequence[int]) -> bool:
    """True when ``seq`` is strictly increasing."""
    return all(a < b for a, b in zip(seq, seq[1:]))


def union_disjoint_sorted(lists: Iterable[Sequence[int]]) -> list[int]:
    """Merge sorted lists with pairwise-disjoint elements.

    This is the k-way merge the paper performs in ``O(1)`` passes given
    ``M = B(sigma lg n)^Omega(1)`` internal memory (§2.2); no
    deduplication is needed because canonical subtrees partition the
    answer.
    """
    if kernels.USE_FAST:
        return kernels.union_disjoint_sorted(lists)
    lists = [lst for lst in lists if lst]
    if not lists:
        return []
    if len(lists) == 1:
        return list(lists[0])
    return list(heapq.merge(*lists))


def union_sorted(lists: Iterable[Sequence[int]]) -> list[int]:
    """Union of sorted lists, deduplicating equal elements."""
    if kernels.USE_FAST:
        return kernels.union_sorted(lists)
    merged = union_disjoint_sorted(lists)
    if not merged:
        return []
    out = [merged[0]]
    append = out.append
    last = merged[0]
    for v in merged:
        if v != last:
            append(v)
            last = v
    return out


def union_many(lists: Sequence[Sequence[int]]) -> list[int]:
    """Deduplicating k-way union of sorted duplicate-free lists.

    The disjunctive counterpart of :func:`intersect_many` — what an
    ``Or`` plan node folds its per-leaf answers with.  Zero input
    lists union to the empty list; the result is always a fresh list,
    never an alias of an input.
    """
    return union_sorted(lists)

def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Intersection of two sorted duplicate-free lists (two pointers)."""
    if kernels.USE_FAST:
        return kernels.intersect_sorted(a, b)
    out: list[int] = []
    append = out.append
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def intersect_many(lists: Sequence[Sequence[int]]) -> list[int]:
    """Intersection of several sorted duplicate-free lists.

    Inputs carry the same precondition as :func:`intersect_sorted`
    (sorted, duplicate-free) at every arity.  Zero input lists
    intersect to the empty list: callers hold no universe here, so the
    empty conjunction cannot materialize "all positions" and the query
    layers are responsible for rejecting condition-free selects.  The
    result is always a fresh list, never an alias of an input.
    """
    if kernels.USE_FAST:
        return kernels.intersect_many(lists)
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    result = list(ordered[0])
    for other in ordered[1:]:
        if not result:
            break
        result = intersect_sorted(result, other)
    return result


def difference_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Elements of sorted ``a`` not present in sorted ``b``."""
    if kernels.USE_FAST:
        return kernels.difference_sorted(a, b)
    out: list[int] = []
    append = out.append
    i = j = 0
    la, lb = len(a), len(b)
    while i < la:
        x = a[i]
        while j < lb and b[j] < x:
            j += 1
        if j >= lb or b[j] != x:
            append(x)
        i += 1
    return out


# ----------------------------------------------------------------------
# Complement-aware set algebra
# ----------------------------------------------------------------------
#
# A set is represented as ``(stored, complemented)``: the sorted list
# physically held plus a flag saying whether the set is that list or
# its complement against the (implicit) universe — exactly the §2.1
# representation ``RangeResult`` uses for majority answers.  The
# combinators below apply De Morgan identities so no operation ever
# materializes a complement: a ``Not`` stays a flag flip, and an
# ``And``/``Or`` over complemented operands rewrites into
# intersection/union/difference of the *stored* (small) lists.  Only a
# final materialization against a concrete universe pays O(n - z).


def union_aware(
    a: Sequence[int], a_comp: bool, b: Sequence[int], b_comp: bool
) -> tuple[list[int], bool]:
    """Union of two complement-aware sets, complement-aware result.

    ``A | B`` plain; ``~A | ~B = ~(A & B)``; ``A | ~B = ~(B - A)``.
    """
    if not a_comp and not b_comp:
        return union_many([a, b]), False
    if a_comp and b_comp:
        return intersect_sorted(a, b), True
    if a_comp:  # ~A | B = ~(A - B)
        return difference_sorted(a, b), True
    return difference_sorted(b, a), True


def intersect_aware(
    a: Sequence[int], a_comp: bool, b: Sequence[int], b_comp: bool
) -> tuple[list[int], bool]:
    """Intersection of two complement-aware sets.

    ``A & B`` plain; ``~A & ~B = ~(A | B)``; ``A & ~B = A - B``.
    """
    if not a_comp and not b_comp:
        return intersect_sorted(a, b), False
    if a_comp and b_comp:
        return union_many([a, b]), True
    if a_comp:  # ~A & B = B - A
        return difference_sorted(b, a), False
    return difference_sorted(a, b), False


def difference_aware(
    a: Sequence[int], a_comp: bool, b: Sequence[int], b_comp: bool
) -> tuple[list[int], bool]:
    """Difference ``A - B`` of two complement-aware sets.

    Rewritten as ``A & ~B`` so every case reduces to
    :func:`intersect_aware` without materializing a complement.
    """
    return intersect_aware(a, a_comp, b, not b_comp)


# ----------------------------------------------------------------------
# Counting twins (cardinality space)
# ----------------------------------------------------------------------
#
# Aggregates only need |result|, and the §2.1 representation makes
# every case answerable without building the result list: a plain
# intersection is counted with two pointers and no output, and every
# complemented case reduces through De Morgan to ``universe`` minus a
# plain count.  These are the counting twins of the aware combinators
# above — same case analysis, an ``int`` out instead of a list.


def intersect_count(a: Sequence[int], b: Sequence[int]) -> int:
    """``|A & B|`` of two sorted duplicate-free lists, no output list."""
    if kernels.USE_FAST:
        return kernels.intersect_count(a, b)
    count = 0
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            count += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return count


def union_count(a: Sequence[int], b: Sequence[int]) -> int:
    """``|A | B|`` by inclusion-exclusion, no output list."""
    return len(a) + len(b) - intersect_count(a, b)


def difference_count(a: Sequence[int], b: Sequence[int]) -> int:
    """``|A - B|`` — the elements of ``a`` minus the shared ones."""
    return len(a) - intersect_count(a, b)


def count_aware(stored: Sequence[int], comp: bool, universe: int) -> int:
    """Cardinality of one complement-aware set, O(1) given lengths."""
    return universe - len(stored) if comp else len(stored)


def intersect_aware_count(
    a: Sequence[int],
    a_comp: bool,
    b: Sequence[int],
    b_comp: bool,
    universe: int,
) -> int:
    """``|A & B|`` of two complement-aware sets over ``universe``.

    ``A & B`` plain; ``~A & ~B = ~(A | B)`` costs ``universe`` minus a
    union count; mixed operands count a difference of stored lists.
    """
    if not a_comp and not b_comp:
        return intersect_count(a, b)
    if a_comp and b_comp:
        return universe - union_count(a, b)
    if a_comp:  # ~A & B = B - A
        return difference_count(b, a)
    return difference_count(a, b)


def union_aware_count(
    a: Sequence[int],
    a_comp: bool,
    b: Sequence[int],
    b_comp: bool,
    universe: int,
) -> int:
    """``|A | B|`` of two complement-aware sets over ``universe``."""
    if not a_comp and not b_comp:
        return union_count(a, b)
    if a_comp and b_comp:  # ~A | ~B = ~(A & B)
        return universe - intersect_count(a, b)
    if a_comp:  # ~A | B = ~(A - B)
        return universe - difference_count(a, b)
    return universe - difference_count(b, a)


def difference_aware_count(
    a: Sequence[int],
    a_comp: bool,
    b: Sequence[int],
    b_comp: bool,
    universe: int,
) -> int:
    """``|A - B|`` via ``A & ~B``, mirroring :func:`difference_aware`."""
    return intersect_aware_count(a, a_comp, b, not b_comp, universe)


def complement_sorted(positions: Sequence[int], universe: int) -> list[int]:
    """All elements of ``[0, universe)`` not in sorted ``positions``.

    Realizes the complement trick of §2.1: when a range query matches
    more than half the string, the structure answers the two flanking
    queries and returns their complement.
    """
    if kernels.USE_FAST:
        return kernels.complement_sorted(positions, universe)
    out: list[int] = []
    append = out.append
    prev = -1
    for p in positions:
        for q in range(prev + 1, p):
            append(q)
        prev = p
    for q in range(prev + 1, universe):
        append(q)
    return out
