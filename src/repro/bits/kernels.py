"""Block-oriented fast kernels for the hot bit/set operations.

Every decode and set-algebra hot path in this package has two
implementations:

* a **reference** kernel — the pure-Python loops that live where the
  paper's algorithms are explained (:mod:`.ops`, :mod:`.wah`,
  :mod:`.ebitmap`).  They stay readable, stay close to the paper's
  pseudocode, and stay the oracle the property tests compare against.
* a **fast** kernel in this module — the same function computed on
  C-backed bulk primitives: frozen ``set`` algebra for
  intersect/union/difference, ``range`` splicing for fills and
  complements, ``int.bit_length``/table lookups for word decoding, and
  a chunked big-integer accumulator (built with ``int.from_bytes``)
  for gamma streams.  No third-party dependencies; everything here is
  CPython builtins operating on whole blocks instead of per-element
  Python bytecode.

Selection
---------
The active kernel is chosen once at import from the ``REPRO_KERNEL``
environment variable (``fast`` — the default — or ``python``) and can
be flipped at runtime with :func:`set_kernel` (what the property suite
and the E18 microbench do).  Dispatch sites read the module-level
:data:`USE_FAST` flag per call, so flipping the switch affects every
subsequent operation immediately and costs one attribute read on the
hot path.

Adding a kernel
---------------
1. Keep (or write) the pure-Python version where the algorithm is
   documented; it is the reference.
2. Add the block-oriented twin here, same signature, same results —
   including error behavior on malformed input.
3. Dispatch at the call site on ``kernels.USE_FAST``.
4. Extend ``tests/test_kernels.py``: the randomized property suite
   runs every fast kernel against its reference on adversarial inputs
   under both switch values.
"""

from __future__ import annotations

import os
from itertools import chain
from typing import Iterable, Sequence

from ..errors import CodecError, InvalidParameterError

#: The two recognized kernel names.
KERNELS = ("python", "fast")

#: True when the fast kernels serve; False routes every dispatch site
#: to its pure-Python reference implementation.
USE_FAST = True


def _init_from_env() -> None:
    global USE_FAST
    name = os.environ.get("REPRO_KERNEL", "fast").strip().lower()
    if name not in KERNELS:
        raise InvalidParameterError(
            f"REPRO_KERNEL must be one of {KERNELS}, got {name!r}"
        )
    USE_FAST = name == "fast"


_init_from_env()


def kernel_name() -> str:
    """The active kernel: ``"fast"`` or ``"python"``."""
    return "fast" if USE_FAST else "python"


def set_kernel(name: str) -> None:
    """Select the active kernel at runtime (tests, benchmarks)."""
    global USE_FAST
    if name not in KERNELS:
        raise InvalidParameterError(
            f"kernel must be one of {KERNELS}, got {name!r}"
        )
    USE_FAST = name == "fast"


# ----------------------------------------------------------------------
# Set algebra on sorted duplicate-free position lists
# ----------------------------------------------------------------------
#
# The reference kernels walk two pointers element by element; these
# twins hand the whole problem to the C implementations of ``set`` and
# ``sorted`` (Timsort detects and merges the pre-sorted runs).  The
# contract is identical: inputs are sorted and duplicate-free, outputs
# are fresh sorted duplicate-free lists.


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    if not a or not b:
        return []
    return sorted(set(a).intersection(b))


def intersect_many(lists: Sequence[Sequence[int]]) -> list[int]:
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    if not ordered[0]:
        return []
    acc = set(ordered[0])
    for other in ordered[1:]:
        acc.intersection_update(other)
        if not acc:
            return []
    return sorted(acc)


def union_disjoint_sorted(lists: Iterable[Sequence[int]]) -> list[int]:
    lists = [lst for lst in lists if lst]
    if not lists:
        return []
    if len(lists) == 1:
        return list(lists[0])
    # Timsort on the concatenation of k sorted runs is a C-speed k-way
    # merge: galloping mode recognizes the pre-sorted runs.
    return sorted(chain.from_iterable(lists))


def union_sorted(lists: Iterable[Sequence[int]]) -> list[int]:
    lists = [lst for lst in lists if lst]
    if not lists:
        return []
    if len(lists) == 1:
        return list(lists[0])
    return sorted(set().union(*lists))


def difference_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    if not a:
        return []
    if not b:
        return list(a)
    return sorted(set(a).difference(b))


def intersect_count(a: Sequence[int], b: Sequence[int]) -> int:
    if not a or not b:
        return 0
    return len(set(a).intersection(b))


def complement_sorted(positions: Sequence[int], universe: int) -> list[int]:
    out: list[int] = []
    extend = out.extend
    prev = -1
    for p in positions:
        if p - prev > 1:
            extend(range(prev + 1, p))
        prev = p
    extend(range(prev + 1, universe))
    return out


# ----------------------------------------------------------------------
# WAH decode
# ----------------------------------------------------------------------
#
# Word layout (see :mod:`.wah`): 32-bit words; a literal word has MSB 0
# and carries one 31-bit group MSB-first (bit 30 of the word is the
# group's first position); a fill word has MSB 1, the fill bit at bit
# 30, and a 30-bit group run count.  The fast decoder turns 1-fills
# into ``range`` splices and literals into two 16-bit table lookups —
# the whole word resolves to its position tuple in two dict-free list
# indexings instead of 31 shift-and-test iterations.

_TAB16: list[tuple[int, ...]] | None = None


def _build_tab16() -> list[tuple[int, ...]]:
    # _TAB16[v] lists the positions p in [0, 16) whose MSB-first bit
    # (bit 15 - p) is set in the 16-bit value v.  Built on first WAH
    # decode, then cached for the process lifetime.
    table = []
    for v in range(1 << 16):
        if v:
            positions = tuple(
                p for p in range(16) if v & (1 << (15 - p))
            )
        else:
            positions = ()
        table.append(positions)
    return table


def wah_decode(words: Sequence[int], universe: int) -> list[int]:
    """Decode WAH words to the sorted 1-position list, block-wise.

    Bit-compatible with ``WahBitmap.iter_positions``: 1-fills clip at
    the universe silently (the encoder may round the last group up),
    but a *literal* bit outside the universe is malformed data and
    raises :class:`CodecError`.
    """
    global _TAB16
    if _TAB16 is None:
        _TAB16 = _build_tab16()
    tab = _TAB16
    # Late import: the run mask must track wah._MAX_RUN even when a
    # test narrows it to force fill splitting at a tiny boundary.
    from . import wah as _wah

    run_mask = _wah._MAX_RUN
    group_bits = _wah.GROUP_BITS
    out: list[int] = []
    extend = out.extend
    append = out.append
    base = 0
    for word in words:
        if word >> 31:
            span = (word & run_mask) * group_bits
            if (word >> 30) & 1:
                hi = base + span
                if hi > universe:
                    hi = universe
                extend(range(base, hi))
            base += span
        else:
            if word:
                top = tab[word >> 15]
                low = tab[(word & 0x7FFF) << 1]
                if base + group_bits > universe:
                    last = (low[-1] + 16) if low else top[-1]
                    if base + last >= universe:
                        raise CodecError(
                            "WAH literal outside the universe"
                        )
                # Population-adaptive: a comprehension amortizes its
                # frame setup only on dense words; sparse words are
                # cheaper through a plain append loop.
                if word.bit_count() > 12:
                    if top:
                        out += [p + base for p in top]
                    if low:
                        mid = base + 16
                        out += [p + mid for p in low]
                else:
                    for p in top:
                        append(p + base)
                    mid = base + 16
                    for p in low:
                        append(p + mid)
            base += group_bits
    return out


# ----------------------------------------------------------------------
# Gamma gap-stream decode
# ----------------------------------------------------------------------
#
# The reference decodes one gamma code at a time through
# ``BitReader.read_unary`` / ``read_bits``, each of which slices and
# converts bytes per call.  The fast kernel keeps a big-integer bit
# accumulator refilled in 256-bit gulps with one ``int.from_bytes``
# per refill; unary runs resolve with ``int.bit_length`` and payload
# bits with one shift-and-mask.  It operates directly on the reader's
# window and leaves the reader positioned exactly after the consumed
# codes, preserving the sequential-decode contract of ``decode_gaps``.

_REFILL_BITS = 256


def decode_gaps_fast(reader, count: int) -> list[int]:
    """Decode ``count`` gamma gap codes from a ``BitReader``, batched.

    Same output, same final reader position, and same
    :class:`CodecError` behavior on truncated streams as the reference
    ``decode_gaps`` loop.
    """
    buf = reader._buf
    cursor = reader._pos
    end = reader._end
    positions: list[int] = []
    append = positions.append
    prev = -1
    acc = 0
    nacc = 0
    for _ in range(count):
        # Unary phase: leading zeros then the marker 1.
        zeros = 0
        while True:
            if nacc:
                top = acc.bit_length()
                if top:
                    zeros += nacc - top
                    nacc = top - 1
                    acc ^= 1 << nacc
                    break
                zeros += nacc
                nacc = 0
            if cursor >= end:
                raise CodecError(
                    "unary code ran past the end of the stream"
                )
            take = end - cursor
            if take > _REFILL_BITS:
                take = _REFILL_BITS
            first = cursor >> 3
            last = (cursor + take - 1) >> 3
            chunk = int.from_bytes(buf[first : last + 1], "big")
            right = ((last + 1) << 3) - (cursor + take)
            acc = (chunk >> right) & ((1 << take) - 1)
            nacc = take
            cursor += take
        if zeros == 0:
            value = 1
        else:
            while nacc < zeros:
                if cursor >= end:
                    raise CodecError(
                        "bit read past the end of the stream"
                    )
                take = end - cursor
                if take > _REFILL_BITS:
                    take = _REFILL_BITS
                first = cursor >> 3
                last = (cursor + take - 1) >> 3
                chunk = int.from_bytes(buf[first : last + 1], "big")
                right = ((last + 1) << 3) - (cursor + take)
                acc = (acc << take) | (
                    (chunk >> right) & ((1 << take) - 1)
                )
                nacc += take
                cursor += take
            nacc -= zeros
            value = (1 << zeros) | (acc >> nacc)
            acc &= (1 << nacc) - 1
        prev += value
        append(prev)
    reader._pos = cursor - nacc
    return positions
