"""Gap-compressed bitmaps — the paper's compressed bitmap representation.

A bitmap with 1s at positions ``p0 < p1 < ... < p_{m-1}`` in a universe
of size ``n`` is stored as the gamma codes of ``p0 + 1`` and of the
successive gaps ``p_i - p_{i-1}`` (§4.2: "the first position ... is
stored as an absolute value, and all the others are stored relative to
the previous position").  This is within a constant factor of the
information-theoretic minimum ``lg C(n, m) = m lg(n/m) + Theta(m)`` bits
(§1.2), which is the space bound every theorem is stated in terms of.

The cardinality is *not* part of the payload; structures keep it in
their directory (the paper stores node weights in the tree), so decoding
takes an explicit ``count``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import CodecError, InvalidParameterError
from . import kernels
from .bitio import BitReader, BitWriter
from .gamma import gamma_length, read_gamma, write_gamma


def encode_gaps(writer: BitWriter, positions: Sequence[int]) -> None:
    """Append the gap encoding of a strictly increasing position list."""
    prev = -1
    for p in positions:
        gap = p - prev
        if gap <= 0:
            raise InvalidParameterError(
                "positions must be strictly increasing and non-negative"
            )
        write_gamma(writer, gap)
        prev = p


def decode_gaps(reader: BitReader, count: int) -> list[int]:
    """Decode ``count`` gap codes back into absolute positions.

    Consumes exactly the gamma bits of the ``count`` codes and leaves
    the reader positioned after them (callers decode several runs
    sequentially from one reader).  Dispatches to the batched
    accumulator kernel (:func:`repro.bits.kernels.decode_gaps_fast`)
    under ``REPRO_KERNEL=fast``; the loop below is the reference.
    """
    if kernels.USE_FAST:
        return kernels.decode_gaps_fast(reader, count)
    positions: list[int] = []
    append = positions.append
    prev = -1
    for _ in range(count):
        prev += read_gamma(reader)
        append(prev)
    return positions


def iter_gaps(reader: BitReader, count: int) -> Iterator[int]:
    """Lazily decode ``count`` gap codes into absolute positions."""
    prev = -1
    for _ in range(count):
        prev += read_gamma(reader)
        yield prev


def encoded_length(positions: Sequence[int]) -> int:
    """Exact bit length :func:`encode_gaps` will produce."""
    total = 0
    prev = -1
    for p in positions:
        gap = p - prev
        if gap <= 0:
            raise InvalidParameterError(
                "positions must be strictly increasing and non-negative"
            )
        total += gamma_length(gap)
        prev = p
    return total


class GapCompressedBitmap:
    """An immutable compressed bitmap over ``[0, universe)``.

    This is the in-memory form; on-disk structures store only the
    payload bits and keep ``(offset, nbits, count)`` in their directory.
    """

    __slots__ = ("payload", "bit_length", "count", "universe")

    def __init__(
        self, payload: bytes, bit_length: int, count: int, universe: int
    ) -> None:
        self.payload = payload
        self.bit_length = bit_length
        self.count = count
        self.universe = universe

    @classmethod
    def from_positions(
        cls, positions: Sequence[int], universe: int
    ) -> "GapCompressedBitmap":
        """Compress a strictly increasing position list."""
        if positions and (positions[0] < 0 or positions[-1] >= universe):
            raise InvalidParameterError("positions outside the universe")
        writer = BitWriter()
        encode_gaps(writer, positions)
        return cls(writer.getvalue(), writer.bit_length, len(positions), universe)

    @property
    def size_bits(self) -> int:
        """Payload size in bits (directory not included)."""
        return self.bit_length

    def positions(self) -> list[int]:
        """Decompress to the sorted list of 1-positions."""
        reader = BitReader(self.payload, bit_length=self.bit_length)
        out = decode_gaps(reader, self.count)
        if out and out[-1] >= self.universe:
            raise CodecError("decoded position outside the universe")
        return out

    def iter_positions(self) -> Iterator[int]:
        """Lazily decompress the 1-positions in increasing order."""
        reader = BitReader(self.payload, bit_length=self.bit_length)
        return iter_gaps(reader, self.count)

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GapCompressedBitmap):
            return NotImplemented
        return (
            self.count == other.count
            and self.universe == other.universe
            and self.bit_length == other.bit_length
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.payload, self.bit_length, self.count, self.universe))

    @classmethod
    def union_disjoint(
        cls, bitmaps: Iterable["GapCompressedBitmap"], universe: int
    ) -> "GapCompressedBitmap":
        """Union of bitmaps with pairwise-disjoint position sets.

        This is the merge the query algorithm of §2 performs on the
        canonical-subtree bitmaps (their position sets partition the
        answer).
        """
        from .ops import union_disjoint_sorted

        merged = union_disjoint_sorted([b.positions() for b in bitmaps])
        return cls.from_positions(merged, universe)
