"""Uncompressed bitmaps.

The explicit bitmap index of §1.2 stores, for every character, an
``n``-bit vector.  This class is that vector, plus the bitwise algebra
the range/interval-encoded baselines need (references [14], [9, 10]).
Logical operations work on the underlying bytes via Python integers,
which is the fastest pure-Python route for multi-kilobit vectors.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import InvalidParameterError


class PlainBitmap:
    """A fixed-universe, mutable, uncompressed bitmap."""

    __slots__ = ("universe", "_bytes")

    def __init__(self, universe: int, raw: bytes | bytearray | None = None) -> None:
        if universe < 0:
            raise InvalidParameterError("universe must be >= 0")
        self.universe = universe
        nbytes = (universe + 7) // 8
        if raw is None:
            self._bytes = bytearray(nbytes)
        else:
            if len(raw) != nbytes:
                raise InvalidParameterError("raw buffer has the wrong length")
            self._bytes = bytearray(raw)

    @classmethod
    def from_positions(cls, positions: Iterable[int], universe: int) -> "PlainBitmap":
        bm = cls(universe)
        for p in positions:
            bm.set(p)
        return bm

    # ------------------------------------------------------------------
    # Single-bit access
    # ------------------------------------------------------------------

    def _check(self, position: int) -> None:
        if position < 0 or position >= self.universe:
            raise InvalidParameterError(
                f"position {position} outside universe [0, {self.universe})"
            )

    def set(self, position: int) -> None:
        """Set the bit at ``position`` to 1."""
        self._check(position)
        self._bytes[position >> 3] |= 0x80 >> (position & 7)

    def clear(self, position: int) -> None:
        """Set the bit at ``position`` to 0."""
        self._check(position)
        self._bytes[position >> 3] &= ~(0x80 >> (position & 7)) & 0xFF

    def get(self, position: int) -> bool:
        """Return whether the bit at ``position`` is 1."""
        self._check(position)
        return bool(self._bytes[position >> 3] & (0x80 >> (position & 7)))

    def __contains__(self, position: int) -> bool:
        return 0 <= position < self.universe and self.get(position)

    # ------------------------------------------------------------------
    # Whole-bitmap views
    # ------------------------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Storage footprint: one bit per universe element."""
        return self.universe

    def count(self) -> int:
        """Number of set bits (the paper's *cardinality*, §1.4)."""
        return int.from_bytes(self._bytes, "big").bit_count()

    def positions(self) -> list[int]:
        """Sorted list of set positions."""
        return list(self.iter_positions())

    def iter_positions(self) -> Iterator[int]:
        """Iterate set positions in increasing order."""
        for byte_index, byte in enumerate(self._bytes):
            if not byte:
                continue
            base = byte_index << 3
            for bit in range(8):
                if byte & (0x80 >> bit):
                    yield base + bit

    def to_bytes(self) -> bytes:
        """The raw payload (big-endian bit order, zero padding at the end)."""
        return bytes(self._bytes)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def _as_int(self) -> int:
        return int.from_bytes(self._bytes, "big")

    def _combine(self, other: "PlainBitmap", value: int) -> "PlainBitmap":
        nbytes = (self.universe + 7) // 8
        return PlainBitmap(self.universe, value.to_bytes(nbytes, "big"))

    def _check_compatible(self, other: "PlainBitmap") -> None:
        if self.universe != other.universe:
            raise InvalidParameterError("bitmaps have different universes")

    def __or__(self, other: "PlainBitmap") -> "PlainBitmap":
        self._check_compatible(other)
        return self._combine(other, self._as_int() | other._as_int())

    def __and__(self, other: "PlainBitmap") -> "PlainBitmap":
        self._check_compatible(other)
        return self._combine(other, self._as_int() & other._as_int())

    def __xor__(self, other: "PlainBitmap") -> "PlainBitmap":
        self._check_compatible(other)
        return self._combine(other, self._as_int() ^ other._as_int())

    def and_not(self, other: "PlainBitmap") -> "PlainBitmap":
        """``self AND NOT other`` — the range-decoding primitive of [14]."""
        self._check_compatible(other)
        return self._combine(other, self._as_int() & ~other._as_int())

    def complement(self) -> "PlainBitmap":
        """Flip every bit inside the universe."""
        n = self.universe
        nbytes = (n + 7) // 8
        mask = ((1 << n) - 1) << (nbytes * 8 - n) if n else 0
        value = (~self._as_int()) & mask
        return PlainBitmap(n, value.to_bytes(nbytes, "big"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlainBitmap):
            return NotImplemented
        return self.universe == other.universe and self._bytes == other._bytes

    def __hash__(self) -> int:
        return hash((self.universe, bytes(self._bytes)))
