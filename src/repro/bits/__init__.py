"""Bit-level codecs and bitmap representations."""

from .bitio import BitReader, BitWriter
from .ebitmap import (
    GapCompressedBitmap,
    decode_gaps,
    encode_gaps,
    encoded_length,
    iter_gaps,
)
from .gamma import (
    delta_length,
    gamma_length,
    read_delta,
    read_gamma,
    write_delta,
    write_gamma,
)
from .ops import (
    complement_sorted,
    difference_sorted,
    intersect_many,
    intersect_sorted,
    is_strictly_increasing,
    union_disjoint_sorted,
    union_sorted,
)
from .plain import PlainBitmap
from .wah import WahBitmap

__all__ = [
    "BitReader",
    "BitWriter",
    "GapCompressedBitmap",
    "PlainBitmap",
    "WahBitmap",
    "complement_sorted",
    "decode_gaps",
    "delta_length",
    "difference_sorted",
    "encode_gaps",
    "encoded_length",
    "gamma_length",
    "intersect_many",
    "intersect_sorted",
    "is_strictly_increasing",
    "iter_gaps",
    "read_delta",
    "read_gamma",
    "union_disjoint_sorted",
    "union_sorted",
    "write_delta",
    "write_gamma",
]
