"""Word-Aligned Hybrid (WAH) bitmap compression.

WAH is the practical compression scheme of Wu, Otoo and Shoshani (the
paper's reference [18]); the paper cites it as the scheme that trades
some compression ratio for word-aligned decoding speed.  We implement it
as a comparator payload so that experiment E10 can contrast its size
against the gamma run-length coding the paper analyzes.

Encoding (32-bit words, 31 payload bits per group):

* literal word — MSB 0, the next 31 bits are a verbatim group;
* fill word — MSB 1, bit 30 is the fill bit, bits 0..29 count how many
  consecutive 31-bit groups consist solely of that bit.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import CodecError, InvalidParameterError
from . import kernels

WORD_BITS = 32
GROUP_BITS = 31
_MAX_RUN = (1 << 30) - 1
_LITERAL_ONES = (1 << GROUP_BITS) - 1


class WahBitmap:
    """An immutable WAH-compressed bitmap over ``[0, universe)``."""

    __slots__ = ("words", "universe", "count")

    def __init__(self, words: tuple[int, ...], universe: int, count: int) -> None:
        self.words = words
        self.universe = universe
        self.count = count

    @classmethod
    def from_positions(cls, positions: Sequence[int], universe: int) -> "WahBitmap":
        """Compress a strictly increasing position list."""
        if positions and (positions[0] < 0 or positions[-1] >= universe):
            raise InvalidParameterError("positions outside the universe")
        ngroups = (universe + GROUP_BITS - 1) // GROUP_BITS
        words: list[int] = []

        def emit_fill(bit: int, run: int) -> None:
            while run > 0:
                take = min(run, _MAX_RUN)
                words.append((1 << 31) | (bit << 30) | take)
                run -= take

        def emit_literal(group: int) -> None:
            words.append(group)

        # Walk the groups, building literals only where 1s occur.
        pos_iter = iter(positions)
        next_pos = next(pos_iter, None)
        group_index = 0
        zero_run = 0
        one_run = 0

        def flush_runs() -> None:
            nonlocal zero_run, one_run
            if zero_run:
                emit_fill(0, zero_run)
                zero_run = 0
            if one_run:
                emit_fill(1, one_run)
                one_run = 0

        while group_index < ngroups:
            if next_pos is None or next_pos // GROUP_BITS > group_index:
                # An all-zero group.
                if one_run:
                    emit_fill(1, one_run)
                    one_run = 0
                zero_run += 1
                if next_pos is None:
                    # All remaining groups are zero; finish in one go.
                    zero_run += ngroups - group_index - 1
                    group_index = ngroups
                    break
                group_index += 1
                continue
            # Collect the 1s of this group.
            group = 0
            base = group_index * GROUP_BITS
            while next_pos is not None and next_pos // GROUP_BITS == group_index:
                group |= 1 << (GROUP_BITS - 1 - (next_pos - base))
                next_pos = next(pos_iter, None)
            if group == _LITERAL_ONES and universe - base >= GROUP_BITS:
                if zero_run:
                    emit_fill(0, zero_run)
                    zero_run = 0
                one_run += 1
            else:
                flush_runs()
                emit_literal(group)
            group_index += 1
        flush_runs()
        return cls(tuple(words), universe, len(positions))

    @property
    def size_bits(self) -> int:
        """Compressed size: 32 bits per WAH word."""
        return WORD_BITS * len(self.words)

    def positions(self) -> list[int]:
        """Decompress to the sorted list of 1-positions."""
        if kernels.USE_FAST:
            return kernels.wah_decode(self.words, self.universe)
        return list(self.iter_positions())

    def iter_positions(self) -> Iterator[int]:
        """Iterate 1-positions in increasing order (reference decoder).

        :meth:`positions` is the batch entry point and dispatches to
        the block-oriented kernel (:func:`repro.bits.kernels.\
wah_decode`) under ``REPRO_KERNEL=fast``; this generator is the
        pure-Python reference both are tested against.
        """
        base = 0
        for word in self.words:
            if word >> 31:
                bit = (word >> 30) & 1
                run = word & _MAX_RUN
                if bit:
                    span = run * GROUP_BITS
                    for offset in range(span):
                        p = base + offset
                        if p < self.universe:
                            yield p
                base += run * GROUP_BITS
            else:
                if word:
                    for bit_index in range(GROUP_BITS):
                        if word & (1 << (GROUP_BITS - 1 - bit_index)):
                            p = base + bit_index
                            if p >= self.universe:
                                raise CodecError("WAH literal outside the universe")
                            yield p
                base += GROUP_BITS

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitmap):
            return NotImplemented
        return self.universe == other.universe and self.words == other.words

    def __hash__(self) -> int:
        return hash((self.words, self.universe))
