"""Standard workloads and query mixes for the experiments."""

from __future__ import annotations

import random

from ..model import distributions as dist


def standard_string(kind: str, n: int, sigma: int, seed: int = 0, **kwargs) -> list[int]:
    """Named workload strings used across experiments."""
    gen = dist.by_name(kind)
    return gen(n, sigma, seed=seed, **kwargs)


def prefix_range_for_selectivity(
    x: list[int], sigma: int, selectivity: float
) -> tuple[int, int]:
    """A character range ``[0, k]`` whose answer is ~``selectivity * n``.

    Exact on ``sequential`` strings; approximate elsewhere (the measured
    ``z`` is always reported alongside).
    """
    n = len(x)
    target = selectivity * n
    counts = [0] * sigma
    for ch in x:
        counts[ch] += 1
    acc = 0
    for k in range(sigma):
        acc += counts[k]
        if acc >= target:
            return (0, k)
    return (0, sigma - 1)


def random_ranges(sigma: int, count: int, seed: int = 0) -> list[tuple[int, int]]:
    """Reproducible random inclusive code ranges."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        lo = rng.randrange(sigma)
        out.append((lo, rng.randrange(lo, sigma)))
    return out


SELECTIVITIES = [1 / 4096, 1 / 512, 1 / 64, 1 / 16, 1 / 4, 1 / 2]
