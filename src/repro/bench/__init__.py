"""Benchmark harness shared by the experiment suite (see DESIGN.md §3)."""

from .harness import (
    Report,
    best_of,
    cold_query,
    fmt,
    output_bits_bound,
    ratio,
    render_table,
)
from .workloads import (
    SELECTIVITIES,
    prefix_range_for_selectivity,
    random_ranges,
    standard_string,
)

__all__ = [
    "Report",
    "SELECTIVITIES",
    "best_of",
    "cold_query",
    "fmt",
    "output_bits_bound",
    "prefix_range_for_selectivity",
    "random_ranges",
    "ratio",
    "render_table",
    "standard_string",
]
