"""Shared machinery for the experiment benchmarks (E1-E10).

The paper has no empirical tables — its evaluation is Theorems 1-7 —
so every benchmark regenerates the table that *would* have appeared:
workload, parameters, the theorem's bound, the measured value, and
their ratio.  :class:`Report` renders those tables, prints them, and
persists them under ``benchmarks/results/`` so EXPERIMENTS.md can cite
the exact numbers of the recorded run.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Any, Callable, Iterable, Sequence

from ..core.interface import SecondaryIndex


def fmt(value: Any) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


class Report:
    """Collects an experiment's tables; prints and persists them.

    Tables are kept twice: rendered (for the ``.txt`` humans read) and
    structured (for the ``.json`` other tools consume).  ``save``
    writes both; :meth:`load` reconstructs a report from the JSON, so a
    write -> reload round-trip reproduces every table cell exactly —
    the stability contract ``tests/test_bench_harness.py`` pins down.
    """

    def __init__(self, name: str, out_dir: str) -> None:
        self.name = name
        self.out_dir = out_dir
        # Ordered structured entries are the single source of truth;
        # the rendered .txt is derived from them at save time.
        self.entries: list[dict[str, Any]] = []

    @property
    def lines(self) -> list[str]:
        return [e["text"] for e in self.entries if e["kind"] == "line"]

    @property
    def tables(self) -> list[dict[str, Any]]:
        return [
            {k: v for k, v in e.items() if k != "kind"}
            for e in self.entries
            if e["kind"] == "table"
        ]

    def line(self, text: str) -> None:
        self.entries.append({"kind": "line", "text": text})
        print(text)

    def table(
        self,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
        note: str | None = None,
    ) -> None:
        # Cells go through fmt() immediately so the stored form mirrors
        # the printed table (and stays JSON-serializable whatever the
        # caller passed in); fmt() is idempotent on strings, so
        # re-rendering after a reload produces identical text.
        entry = {
            "kind": "table",
            "title": title,
            "headers": list(headers),
            "rows": [[fmt(cell) for cell in row] for row in rows],
            "note": note,
        }
        self.entries.append(entry)
        print("\n" + self._render_entry(entry))

    @staticmethod
    def _render_entry(entry: dict[str, Any]) -> str:
        if entry["kind"] == "line":
            return entry["text"]
        text = render_table(entry["title"], entry["headers"], entry["rows"])
        if entry["note"]:
            text += f"\n   note: {entry['note']}"
        return text

    def save(self) -> str:
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir, f"{self.name}.txt")
        chunks = [self._render_entry(e) for e in self.entries]
        with open(path, "w") as f:
            f.write("\n\n".join(chunks) + "\n")
        with open(self.json_path(self.out_dir, self.name), "w") as f:
            json.dump(
                {"name": self.name, "entries": self.entries},
                f,
                indent=2,
                sort_keys=True,
            )
        return path

    @staticmethod
    def json_path(out_dir: str, name: str) -> str:
        return os.path.join(out_dir, f"{name}.json")

    @classmethod
    def load(cls, out_dir: str, name: str) -> "Report":
        """Reconstruct a saved report from its JSON file."""
        with open(cls.json_path(out_dir, name)) as f:
            data = json.load(f)
        report = cls(data["name"], out_dir)
        report.entries = [dict(e) for e in data["entries"]]
        return report


# ----------------------------------------------------------------------
# Measurement helpers
# ----------------------------------------------------------------------


def cold_query(index: SecondaryIndex, char_lo: int, char_hi: int) -> dict[str, int]:
    """Run one range query with a cold cache; return its I/O cost."""
    index.disk.flush_cache()
    with index.stats.measure() as m:
        result = index.range_query(char_lo, char_hi)
    return {
        "reads": m.reads,
        "bits_read": m.bits_read,
        "z": result.cardinality,
    }


def best_of(fn: Callable[[], Any], repeats: int = 3) -> tuple[float, Any]:
    """Best wall-clock seconds over ``repeats`` runs, plus the result.

    Best-of (not mean) because scheduler noise only ever *adds* time;
    the comparisons in the scaling benchmarks are between code paths,
    not between machines.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def output_bits_bound(n: int, z: int) -> float:
    """``z lg(n/z)`` with the complement convention (the T of §1.4)."""
    z_eff = min(z, n - z)
    if z_eff <= 0:
        return 1.0
    return z_eff * math.log2(n / z_eff) + 2 * z_eff


def ratio(measured: float, bound: float) -> float:
    """measured / bound, guarding the zero-bound corner."""
    return measured / max(bound, 1e-9)
