"""Shared machinery for the experiment benchmarks (E1-E10).

The paper has no empirical tables — its evaluation is Theorems 1-7 —
so every benchmark regenerates the table that *would* have appeared:
workload, parameters, the theorem's bound, the measured value, and
their ratio.  :class:`Report` renders those tables, prints them, and
persists them under ``benchmarks/results/`` so EXPERIMENTS.md can cite
the exact numbers of the recorded run.
"""

from __future__ import annotations

import math
import os
from typing import Any, Iterable, Sequence

from ..core.interface import SecondaryIndex


def fmt(value: Any) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


class Report:
    """Collects an experiment's tables; prints and persists them."""

    def __init__(self, name: str, out_dir: str) -> None:
        self.name = name
        self.out_dir = out_dir
        self._chunks: list[str] = []

    def line(self, text: str) -> None:
        self._chunks.append(text)
        print(text)

    def table(
        self,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
        note: str | None = None,
    ) -> None:
        text = render_table(title, headers, rows)
        if note:
            text += f"\n   note: {note}"
        self._chunks.append(text)
        print("\n" + text)

    def save(self) -> str:
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir, f"{self.name}.txt")
        with open(path, "w") as f:
            f.write("\n\n".join(self._chunks) + "\n")
        return path


# ----------------------------------------------------------------------
# Measurement helpers
# ----------------------------------------------------------------------


def cold_query(index: SecondaryIndex, char_lo: int, char_hi: int) -> dict[str, int]:
    """Run one range query with a cold cache; return its I/O cost."""
    index.disk.flush_cache()
    with index.stats.measure() as m:
        result = index.range_query(char_lo, char_hi)
    return {
        "reads": m.reads,
        "bits_read": m.bits_read,
        "z": result.cardinality,
    }


def output_bits_bound(n: int, z: int) -> float:
    """``z lg(n/z)`` with the complement convention (the T of §1.4)."""
    z_eff = min(z, n - z)
    if z_eff <= 0:
        return 1.0
    return z_eff * math.log2(n / z_eff) + 2 * z_eff


def ratio(measured: float, bound: float) -> float:
    """measured / bound, guarding the zero-bound corner."""
    return measured / max(bound, 1e-9)
