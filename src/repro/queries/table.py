"""Multi-attribute tables queried by RID intersection (§1, §3).

The paper's motivating application: "in a database of people we may
want to find all married men of age 33", answered by intersecting the
results of one secondary index per attribute.  This module provides

* :class:`Table` — named columns over arbitrary ordered values, each
  carrying an :class:`~repro.model.alphabet.Alphabet` and a secondary
  index (any :class:`~repro.core.interface.SecondaryIndex` factory);
* exact conjunctive range queries via sorted-list intersection;
* approximate conjunctive queries via Theorem 3: each dimension returns
  a compressed hashed filter; candidates are generated from the first
  filter's preimage and cross-checked in O(1) per dimension, so a row
  matching only ``k`` of ``d`` conditions survives with probability at
  most ``eps^(d-k)``; survivors are finally verified against the base
  table ("false positives can be filtered away when accessing the
  associated data", §1.1).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..bits.ops import intersect_many
from ..core.approximate import ApproximatePaghRaoIndex, ApproximateResult
from ..core.interface import SecondaryIndex
from ..core.static_index import PaghRaoIndex
from ..engine import QueryEngine
from ..errors import InvalidParameterError, QueryError
from ..model.alphabet import Alphabet
from ..query import (
    Pred,
    compile_pred,
    evaluate_count,
    evaluate_count_by,
    evaluate_exists,
    evaluate_fetch,
    evaluate_iter,
    mapping_to_pred,
    translate,
    warn_mapping_adapter,
)

IndexFactory = Callable[[Sequence[int], int], SecondaryIndex]


def default_factory(codes: Sequence[int], sigma: int) -> SecondaryIndex:
    """Theorem-2 index, the legacy fixed default (pre-engine)."""
    return PaghRaoIndex(codes, sigma)


def approximate_factory(seed: int = 0) -> IndexFactory:
    """Factory producing Theorem-3 indexes (needed for approximate mode)."""

    def make(codes: Sequence[int], sigma: int) -> SecondaryIndex:
        return ApproximatePaghRaoIndex(codes, sigma, seed=seed)

    return make


class Column:
    """One attribute: values, their alphabet, and a secondary index.

    The index comes either from an explicit ``factory`` (the legacy
    path, still used for approximate mode) or from a
    :class:`~repro.engine.engine.QueryEngine`, which lets the advisor
    pick the backend per column from the measured codes.
    """

    def __init__(
        self,
        name: str,
        values: Sequence[Any],
        factory: IndexFactory | None = None,
        engine: QueryEngine | None = None,
    ) -> None:
        if not values:
            raise InvalidParameterError(f"column {name!r} is empty")
        if (factory is None) == (engine is None):
            raise InvalidParameterError(
                "a column needs exactly one of factory or engine"
            )
        self.name = name
        self.values = list(values)
        self.alphabet = Alphabet(values)
        self.codes = self.alphabet.encode(values)
        if engine is not None:
            self.index = engine.add_column(
                name, self.codes, self.alphabet.sigma
            ).index
        else:
            self.index = factory(self.codes, self.alphabet.sigma)

    def code_range(self, lo: Any, hi: Any) -> tuple[int, int] | None:
        return self.alphabet.code_range(lo, hi)


class Table:
    """Columns of equal length with one secondary index each.

    By default the table builds through a :class:`QueryEngine`: the
    advisor picks each column's backend and repeated range conditions
    are served from the engine's LRU result cache.  Passing ``factory``
    pins every column to one structure, exactly as before the engine
    existed.
    """

    def __init__(
        self,
        columns: Mapping[str, Sequence[Any]],
        factory: IndexFactory | None = None,
        engine: QueryEngine | None = None,
        cost_model=None,
    ) -> None:
        if not columns:
            raise InvalidParameterError("a table needs at least one column")
        if factory is not None and engine is not None:
            raise InvalidParameterError(
                "pass either a factory or an engine, not both"
            )
        if cost_model is not None and (factory is not None or engine is not None):
            raise InvalidParameterError(
                "cost_model configures the default engine; pass it alone"
            )
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise InvalidParameterError("columns must have equal length")
        self.num_rows = lengths.pop()
        if factory is None and engine is None:
            # The calibration feedback path: a measured CostModel
            # (e.g. CostModel.load_calibrated(path)) re-weighs the
            # advisor that picks every column's backend.
            engine = QueryEngine(cost_model=cost_model)
        self.engine = engine
        self.columns: dict[str, Column] = {
            name: Column(name, values, factory=factory, engine=engine)
            for name, values in columns.items()
        }

    @classmethod
    def sharded(
        cls,
        columns: Mapping[str, Sequence[Any]],
        num_shards: int | None = None,
        target_shard_rows: int | None = None,
        **cluster_kwargs,
    ):
        """The sharded construction path: a scatter-gather table.

        Returns a :class:`repro.cluster.ShardedTable` — same value-space
        ``select``/``row`` interface, but each column is partitioned
        into RID-range shards served by one engine each, behind the
        cluster's shared result cache.  Use it when one process's
        single engine is the bottleneck; see ``src/repro/cluster/``.
        """
        from ..cluster.table import ShardedTable

        return ShardedTable(
            columns,
            num_shards=num_shards,
            target_shard_rows=target_shard_rows,
            **cluster_kwargs,
        )

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(f"unknown column {name!r}") from None

    def row(self, rid: int) -> dict[str, Any]:
        """Fetch one row's attribute values (the "associated data")."""
        if rid < 0 or rid >= self.num_rows:
            raise QueryError(f"row id {rid} outside [0, {self.num_rows})")
        return {name: col.values[rid] for name, col in self.columns.items()}

    def stats(self):
        """One typed, JSON-serializable snapshot of the serving layer.

        Engine-built tables embed the full
        :class:`~repro.obs.EngineStats` (per-column backends, cache
        tier, I/O, attached metrics); factory-pinned tables have no
        engine, so the snapshot carries the summed per-index disk
        transfers instead.
        """
        from ..iomodel.stats import Snapshot
        from ..obs import TableStats

        if self.engine is not None:
            return TableStats(
                num_rows=self.num_rows, engine=self.engine.stats()
            )
        total = Snapshot()
        for col in self.columns.values():
            disk = getattr(col.index, "disk", None)
            if disk is not None:
                total = total + disk.stats.snapshot()
        return TableStats(num_rows=self.num_rows, io=total)

    # ------------------------------------------------------------------
    # Exact predicate queries (RID set algebra over §1 range queries)
    # ------------------------------------------------------------------

    def _translate(self, pred: Pred) -> Pred:
        """A value-space predicate in code space (§1.1's dictionary)."""

        def alphabet_of(name: str) -> Alphabet:
            return self.column(name).alphabet

        return translate(pred, alphabet_of)

    def _compile_factory(self, pred: Pred):
        """Compile a code-space predicate against explicit factories.

        The legacy (engine-less) build path still serves the full
        algebra: leaves run straight against each column's index, the
        plan folds through the same :func:`repro.query.evaluate` the
        engine uses — just without a result cache in front.
        """

        def sigma_of(name: str) -> int:
            return self.column(name).alphabet.sigma

        return compile_pred(pred, sigma_of), self.num_rows

    def select(
        self, conditions: "Pred | Mapping[str, tuple[Any, Any]]"
    ) -> list[int]:
        """Row ids matching a predicate over column *values*.

        Any ``Range``/``Eq``/``In``/``And``/``Or``/``Not`` tree from
        :mod:`repro.query`; bounds and members are values, translated
        through each column's alphabet before planning (a range
        covers every occurring value inside it, either bound may be
        open).  The legacy ``{column: (lo, hi)}`` conjunction mapping
        still works as a deprecated adapter.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("Table.select")
            conditions = mapping_to_pred(conditions)
        code_pred = self._translate(conditions)
        if self.engine is not None:
            # Per-leaf results are cached by the engine; identical
            # leaves across disjuncts share entries.
            return self.engine.select(code_pred)
        plan, universe = self._compile_factory(code_pred)

        def fetch(col, lo, hi):
            return self.columns[col].index.range_query(lo, hi)

        return evaluate_fetch(plan, fetch, universe).positions()

    def select_iter(
        self, conditions: "Pred | Mapping[str, tuple[Any, Any]]"
    ):
        """Streaming :meth:`select`: matching row ids, one at a time."""
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("Table.select_iter")
            conditions = mapping_to_pred(conditions)
        code_pred = self._translate(conditions)
        if self.engine is not None:
            return self.engine.select_iter(code_pred)
        plan, universe = self._compile_factory(code_pred)

        def leaf_iter(col: str, lo: int, hi: int):
            return self.columns[col].index.range_query(lo, hi).iter_positions()

        return evaluate_iter(plan, leaf_iter, universe)

    # ------------------------------------------------------------------
    # Aggregates (value space; answers, not row ids)
    # ------------------------------------------------------------------

    def count(
        self, conditions: "Pred | Mapping[str, tuple[Any, Any]]"
    ) -> int:
        """How many rows match a value-space predicate.

        Folds in cardinality space — the matching row-id list is
        never materialized, under either build path.
        """
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("Table.count")
            conditions = mapping_to_pred(conditions)
        code_pred = self._translate(conditions)
        if self.engine is not None:
            return self.engine.count(code_pred)
        plan, universe = self._compile_factory(code_pred)
        return evaluate_count(plan, self._factory_fetch, universe)

    def exists(
        self, conditions: "Pred | Mapping[str, tuple[Any, Any]]"
    ) -> bool:
        """Does at least one row match?  Stops at the first evidence."""
        if not isinstance(conditions, Pred):
            warn_mapping_adapter("Table.exists")
            conditions = mapping_to_pred(conditions)
        code_pred = self._translate(conditions)
        if self.engine is not None:
            return self.engine.exists(code_pred)
        plan, universe = self._compile_factory(code_pred)
        return evaluate_exists(plan, self._factory_fetch, universe)

    def count_by(
        self, group: str, conditions: "Pred | None" = None
    ) -> dict[Any, int]:
        """Matching-row counts keyed by the *values* of ``group``.

        The predicate folds once; each occurring group value costs one
        equality leaf on the group column.  Zero-count groups are
        omitted; ``conditions=None`` counts every row by group.
        """
        group_col = self.column(group)
        if conditions is None:
            code_counts = (
                self.engine.count_by(group)
                if self.engine is not None
                else evaluate_count_by(
                    None,
                    self._factory_fetch,
                    self.num_rows,
                    range(group_col.alphabet.sigma),
                    lambda code: group_col.index.range_query(code, code),
                )
            )
        else:
            if not isinstance(conditions, Pred):
                raise QueryError("count_by takes a predicate or None")
            code_pred = self._translate(conditions)
            if self.engine is not None:
                code_counts = self.engine.count_by(group, code_pred)
            else:
                plan, universe = self._compile_factory(code_pred)
                # Factory alphabets are built from occurring values,
                # so every code 0..sigma-1 is a live group.
                code_counts = evaluate_count_by(
                    plan,
                    self._factory_fetch,
                    universe,
                    range(group_col.alphabet.sigma),
                    lambda code: group_col.index.range_query(code, code),
                )
        return {
            group_col.alphabet.value(code): n
            for code, n in code_counts.items()
        }

    def topk(
        self, group: str, conditions: "Pred | None" = None, k: int = 10
    ) -> list[tuple[Any, int]]:
        """The ``k`` most frequent group *values* among matching rows.

        Count-descending; ties break by the group values' own order
        (their alphabet codes), deterministically.
        """
        if k <= 0:
            raise InvalidParameterError("topk requires k >= 1")
        alphabet = self.column(group).alphabet
        counts = self.count_by(group, conditions)
        return sorted(
            counts.items(),
            key=lambda kv: (-kv[1], alphabet.code(kv[0])),
        )[:k]

    def _factory_fetch(self, col: str, lo: int, hi: int):
        return self.columns[col].index.range_query(lo, hi)

    def explain(self, conditions: Pred) -> "Any":
        """The typed plan report for a value-space predicate.

        Requires the engine build path (the report carries the
        engine's backend verdicts and cache state).
        """
        if not isinstance(conditions, Pred):
            raise QueryError("explain takes a predicate; use repro.query")
        if self.engine is None:
            raise QueryError(
                "explain needs an engine-built table (the default); "
                "factory-pinned tables carry no advisor verdicts"
            )
        return self.engine.explain(self._translate(conditions))

    # ------------------------------------------------------------------
    # Approximate RID intersection (§3)
    # ------------------------------------------------------------------

    def select_approximate(
        self,
        conditions: Mapping[str, tuple[Any, Any]],
        eps: float,
        verify: bool = True,
    ) -> list[int]:
        """Candidate row ids via Theorem-3 filters.

        Every dimension answers with a hashed filter read in
        ``O(z lg(1/eps))`` bits; candidates enumerate the smallest
        filter's preimage and must pass every other filter.  With
        ``verify=True`` the survivors are checked against the base
        table, yielding the exact answer (the paper's final filtering
        during data access).
        """
        if not conditions:
            raise QueryError("select requires at least one condition")
        filters: list[ApproximateResult] = []
        exact_dims: list[list[int]] = []
        for name, (lo, hi) in conditions.items():
            col = self.column(name)
            index = col.index
            if not isinstance(index, ApproximatePaghRaoIndex):
                raise QueryError(
                    f"column {name!r} does not carry an approximate index; "
                    "build the Table with approximate_factory()"
                )
            code_range = col.code_range(lo, hi)
            if code_range is None:
                return []
            answer = index.approx_range_query(*code_range, eps)
            if isinstance(answer, ApproximateResult):
                filters.append(answer)
            else:
                exact_dims.append(answer.positions())
        if filters:
            seed_filter = min(filters, key=lambda f: f.candidate_bound)
            rest = [f for f in filters if f is not seed_filter]
            candidates = [
                p
                for p in seed_filter.iter_candidates()
                if all(f.might_contain(p) for f in rest)
            ]
            if exact_dims:
                candidates = intersect_many([candidates, *exact_dims])
        else:
            candidates = intersect_many(exact_dims)
        if not verify:
            return candidates
        return [rid for rid in candidates if self._matches(rid, conditions)]

    def _matches(
        self, rid: int, conditions: Mapping[str, tuple[Any, Any]]
    ) -> bool:
        for name, (lo, hi) in conditions.items():
            value = self.columns[name].values[rid]
            if not (lo <= value <= hi):
                return False
        return True
