"""The general query families of §1, built from one-dimensional indexes.

Beyond plain conjunctions, the paper argues (§1) that a collection of
one-dimensional secondary indexes answers queries no practical
multi-dimensional structure handles at high ``d``:

* **approximate range search** — "find points that are in the range in
  at least ``d1`` out of ``d`` dimensions";
* **partial match** — "find points that match range conditions in
  ``d1`` given dimensions, where ``d1 << d``";
* arbitrary boolean combinations of range conditions (the
  union-intersection expressions of reference [5]).

Each function runs in two modes: *exact* (one Theorem-2 range query per
dimension, then set algebra) and *approximate* (one Theorem-3 filter
per dimension, candidates generated from a preimage and cross-checked
in O(1) per dimension; §3 notes intersections of approximate results
are "easy: simply compute the preimage of the intersection").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..bits.ops import (
    complement_sorted,
    intersect_sorted,
    union_sorted,
)
from ..core.approximate import ApproximatePaghRaoIndex, ApproximateResult
from ..core.interface import RangeResult, SecondaryIndex
from ..errors import QueryError


# ----------------------------------------------------------------------
# Per-dimension answers
# ----------------------------------------------------------------------


def _exact_positions(
    index: SecondaryIndex, code_range: tuple[int, int]
) -> list[int]:
    return index.range_query(*code_range).positions()


def _filter(
    index: ApproximatePaghRaoIndex,
    code_range: tuple[int, int],
    eps: float,
) -> "ApproximateResult | RangeResult":
    return index.approx_range_query(*code_range, eps)


def _might_contain(answer, position: int) -> bool:
    if isinstance(answer, ApproximateResult):
        return answer.might_contain(position)
    return position in answer


# ----------------------------------------------------------------------
# At-least-k matching (approximate range search, §1)
# ----------------------------------------------------------------------


def at_least_k_exact(
    indexes: Sequence[SecondaryIndex],
    code_ranges: Sequence[tuple[int, int]],
    k: int,
) -> list[int]:
    """Positions inside the range in at least ``k`` of ``d`` dimensions.

    Exact evaluation: one range query per dimension, then a counting
    merge over the sorted per-dimension answers.
    """
    d = len(indexes)
    if len(code_ranges) != d:
        raise QueryError("one code range per index required")
    if not 1 <= k <= d:
        raise QueryError(f"need 1 <= k <= {d}")
    counts: dict[int, int] = {}
    for index, code_range in zip(indexes, code_ranges):
        for p in _exact_positions(index, code_range):
            counts[p] = counts.get(p, 0) + 1
    return sorted(p for p, c in counts.items() if c >= k)


def at_least_k_approximate(
    indexes: Sequence[ApproximatePaghRaoIndex],
    code_ranges: Sequence[tuple[int, int]],
    k: int,
    eps: float,
) -> list[int]:
    """Approximate at-least-k: a superset of the exact answer.

    Candidates are generated from the union of the d filters'
    candidate streams and kept when at least ``k`` filters accept them.
    A position inside the range in only ``j < k`` dimensions survives
    with probability at most ``C(d-j, k-j) * eps^(k-j)``.
    """
    d = len(indexes)
    if len(code_ranges) != d:
        raise QueryError("one code range per index required")
    if not 1 <= k <= d:
        raise QueryError(f"need 1 <= k <= {d}")
    answers = [
        _filter(index, code_range, eps)
        for index, code_range in zip(indexes, code_ranges)
    ]
    # Candidate pool: positions some filter might contain.  Exact
    # answers contribute their positions; approximate ones their
    # preimage candidates.
    pool: set[int] = set()
    for answer in answers:
        if isinstance(answer, ApproximateResult):
            pool.update(answer.iter_candidates())
        else:
            pool.update(answer.positions())
    out = [
        p
        for p in pool
        if sum(1 for a in answers if _might_contain(a, p)) >= k
    ]
    out.sort()
    return out


# ----------------------------------------------------------------------
# Partial match (§1)
# ----------------------------------------------------------------------


def partial_match_exact(
    indexes: Mapping[int, SecondaryIndex],
    code_ranges: Mapping[int, tuple[int, int]],
) -> list[int]:
    """Conjunction over a chosen subset of dimensions (exact)."""
    if not code_ranges:
        raise QueryError("partial match requires at least one dimension")
    result: list[int] | None = None
    for dim, code_range in code_ranges.items():
        try:
            index = indexes[dim]
        except KeyError:
            raise QueryError(f"no index for dimension {dim}") from None
        positions = _exact_positions(index, code_range)
        result = positions if result is None else intersect_sorted(result, positions)
        if not result:
            return []
    assert result is not None
    return result


def partial_match_approximate(
    indexes: Mapping[int, ApproximatePaghRaoIndex],
    code_ranges: Mapping[int, tuple[int, int]],
    eps: float,
) -> list[int]:
    """Conjunction over a subset of dimensions via Theorem-3 filters.

    Enumerates the candidate stream of the most selective filter and
    keeps positions every other filter accepts (false survivors die off
    as ``eps`` per additional dimension).
    """
    if not code_ranges:
        raise QueryError("partial match requires at least one dimension")
    answers = {}
    for dim, code_range in code_ranges.items():
        try:
            index = indexes[dim]
        except KeyError:
            raise QueryError(f"no index for dimension {dim}") from None
        answers[dim] = _filter(index, code_range, eps)
    # Seed: the exact answer with fewest positions, else the filter
    # with the smallest candidate bound.
    exact = {
        d: a for d, a in answers.items() if not isinstance(a, ApproximateResult)
    }
    if exact:
        seed_dim = min(exact, key=lambda d: exact[d].cardinality)
        seed = exact[seed_dim].positions()
    else:
        seed_dim = min(answers, key=lambda d: answers[d].candidate_bound)
        seed = list(answers[seed_dim].iter_candidates())
    rest = [a for d, a in answers.items() if d != seed_dim]
    return [p for p in seed if all(_might_contain(a, p) for a in rest)]


# ----------------------------------------------------------------------
# Boolean plans (union-intersection expressions, reference [5])
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Cond:
    """A leaf condition: dimension and inclusive code range."""

    dim: int
    lo: int
    hi: int


@dataclass(frozen=True)
class And:
    parts: tuple  # of expressions


@dataclass(frozen=True)
class Or:
    parts: tuple


@dataclass(frozen=True)
class Not:
    part: object


def evaluate_expression(
    expr,
    indexes: Mapping[int, SecondaryIndex],
    universe: int,
) -> list[int]:
    """Exactly evaluate an And/Or/Not tree over Cond leaves.

    Leaves cost one range query each; the combination is sorted-set
    algebra, mirroring how a query plan ANDs RID lists (§1's
    "RID intersection ... common in OLAP").
    """
    if isinstance(expr, Cond):
        try:
            index = indexes[expr.dim]
        except KeyError:
            raise QueryError(f"no index for dimension {expr.dim}") from None
        return index.range_query(expr.lo, expr.hi).positions()
    if isinstance(expr, And):
        if not expr.parts:
            raise QueryError("empty And")
        out = evaluate_expression(expr.parts[0], indexes, universe)
        for part in expr.parts[1:]:
            if not out:
                break
            out = intersect_sorted(
                out, evaluate_expression(part, indexes, universe)
            )
        return out
    if isinstance(expr, Or):
        if not expr.parts:
            raise QueryError("empty Or")
        return union_sorted(
            [evaluate_expression(p, indexes, universe) for p in expr.parts]
        )
    if isinstance(expr, Not):
        return complement_sorted(
            evaluate_expression(expr.part, indexes, universe), universe
        )
    raise QueryError(f"unknown expression node {type(expr).__name__}")
