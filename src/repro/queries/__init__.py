"""Multi-dimensional queries by RID intersection (§1's application)."""

from .multidim import (
    And,
    Cond,
    Not,
    Or,
    at_least_k_approximate,
    at_least_k_exact,
    evaluate_expression,
    partial_match_approximate,
    partial_match_exact,
)
from .table import Column, Table, approximate_factory, default_factory

__all__ = [
    "And",
    "Column",
    "Cond",
    "Not",
    "Or",
    "Table",
    "approximate_factory",
    "at_least_k_approximate",
    "at_least_k_exact",
    "default_factory",
    "evaluate_expression",
    "partial_match_approximate",
    "partial_match_exact",
]
