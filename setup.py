"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 660
editable installs fail; this shim lets ``pip install -e .`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
