# Convenience targets mirroring the commands CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench

# The tier-1 suite (ROADMAP.md's verify command).
test:
	$(PYTHON) -m pytest -x -q

# A fast benchmark smoke run: proves the advisor/caching claims (E11),
# the sharded scatter-gather/shared-cache/migration claims (E12), the
# shard-lifecycle/streaming-gather claims (E13), the process-parallel
# scatter/accounting/prefetch claims (E14), the predicate-algebra
# planning claims (E15: IN runs, cached-leg reuse, complement-aware
# Not), the aggregate-pushdown claims (E16: count/exists from the
# bitmap algebra, counts-not-RIDs over worker pipes, cost-ordered
# And), and the observability claims (E17: disabled tracing is free,
# the slow-query log captures offenders, worker spans stitch into one
# trace whose bits match scatter_io), the kernel/transport claims
# (E18: fast WAH decode >= 3x the reference, bulk payloads off the
# pipe), the serving front-end claims (E19: single-flight
# coalescing lifts QPS >= 1.5x on a Zipf mix, admission control
# bounds admitted p99 under 2x offered load, hot-shard replicas
# answer scatter reads), and the durability claims (E20: cold restore
# from snapshot+WAL >= 3x faster than rebuilding from raw codes with
# identical answers on both executors, WAL replay throughput,
# checkpoint pause vs the serving path) end-to-end (asserts inside
# the benchmarks) in well under 150 seconds.  --durations=0 prints
# the wall time of every benchmark.
bench-smoke:
	timeout 150 $(PYTHON) -m pytest benchmarks/bench_e11_engine.py \
		benchmarks/bench_e12_cluster.py \
		benchmarks/bench_e13_lifecycle.py \
		benchmarks/bench_e14_parallel.py \
		benchmarks/bench_e15_predicates.py \
		benchmarks/bench_e16_aggregates.py \
		benchmarks/bench_e17_observability.py \
		benchmarks/bench_e18_kernels.py \
		benchmarks/bench_e19_qps.py \
		benchmarks/bench_e20_persistence.py -q \
		-p no:cacheprovider --benchmark-disable --durations=0

# The full experiment matrix (slow; regenerates benchmarks/results/).
bench:
	$(PYTHON) -m pytest benchmarks -q -p no:cacheprovider
