# Convenience targets mirroring the commands CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench

# The tier-1 suite (ROADMAP.md's verify command).
test:
	$(PYTHON) -m pytest -x -q

# A fast engine-benchmark smoke run: proves the advisor/caching claims
# end-to-end (asserts inside the benchmark) in well under a minute.
bench-smoke:
	timeout 60 $(PYTHON) -m pytest benchmarks/bench_e11_engine.py -q \
		-p no:cacheprovider --benchmark-disable

# The full experiment matrix (slow; regenerates benchmarks/results/).
bench:
	$(PYTHON) -m pytest benchmarks -q -p no:cacheprovider
